"""Blocking wire client for the detection service.

A thin, dependency-free client over :mod:`.protocol`: one socket, one
request in flight, timeouts on every byte, and capped
exponential-backoff retries.  Two failure classes are retried:

* **transport failures** (connection refused/reset, truncated frame) —
  the socket is reconnected and the request resent.  Against protocol-3
  servers this includes ``ingest``: every ingest carries a generated
  ``request_id`` the server dedupes, so a frame that was applied before
  the connection died is acknowledged, not re-applied.  Against older
  servers (negotiated version < 3) a broken ingest is still *not*
  resent — they would apply it twice;
* **transient server states** (``overloaded``, ``not_ready``,
  ``unavailable`` responses) — retried after backoff when
  ``retry_overloaded`` is set, which is the intended reaction to the
  server's explicit backpressure/warm-up signal.

Requests carry the client's protocol version (``v``); if the server
answers ``unsupported_version`` and advertises a speakable range that
overlaps ours, the client silently negotiates down to the server's
``max_version`` and resends — so a newer client keeps working against
an older server without caller involvement.

Backoff for attempt *k* sleeps ``min(backoff_cap, backoff * 2**k)``
seconds.  Any other error response raises :class:`ServerError` carrying
the server's error code.
"""

from __future__ import annotations

import socket
import time
import uuid
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..errors import ReproError
from . import protocol


class ServiceUnavailable(ReproError):
    """The server could not be reached within the configured retries."""


class ServerError(ReproError):
    """The server answered with an error response."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


@dataclass
class WireResult:
    """One query's matches, parsed back into arrays.

    ``fingerprints`` is ``None`` unless the query was sent with
    ``include_fingerprints=True``.
    """

    rows: np.ndarray
    ids: np.ndarray
    timecodes: np.ndarray
    fingerprints: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return int(self.rows.size)

    @classmethod
    def from_wire(cls, wire: dict) -> "WireResult":
        fps = wire.get("fingerprints")
        if fps is None:
            fingerprints = None
        elif len(wire["rows"]):
            fingerprints = np.asarray(fps, dtype=np.uint8).reshape(
                len(wire["rows"]), -1
            )
        else:
            # reshape(0, -1) cannot infer a width from zero elements; a
            # zero-match query still carries fingerprints as an empty
            # matrix so callers can index it uniformly.
            fingerprints = np.zeros((0, 0), dtype=np.uint8)
        return cls(
            rows=np.asarray(wire["rows"], dtype=np.int64),
            ids=np.asarray(wire["ids"], dtype=np.int64),
            timecodes=np.asarray(wire["timecodes"], dtype=np.float64),
            fingerprints=fingerprints,
        )


class ServeClient:
    """A blocking client for one detection server.

    Usable as a context manager; the connection is opened lazily and
    transparently re-opened after transport failures.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = 10.0,
        retries: int = 4,
        backoff: float = 0.05,
        backoff_cap: float = 1.0,
        retry_overloaded: bool = True,
        max_frame: int = protocol.MAX_FRAME_BYTES,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.retry_overloaded = retry_overloaded
        self.max_frame = max_frame
        #: Version stamped on outgoing requests; lowered automatically
        #: when a server advertises a smaller ``max_version``.
        self.protocol_version = protocol.PROTOCOL_VERSION
        self._sock: Optional[socket.socket] = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def _connect(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._sock

    def _sleep_backoff(self, attempt: int) -> None:
        time.sleep(min(self.backoff_cap, self.backoff * (2.0 ** attempt)))

    def _request(
        self, message: dict, idempotent: Union[bool, int] = True
    ) -> dict:
        """Send one request; returns the ``result`` payload or raises.

        *idempotent* decides whether a request already on the wire may
        be resent after a transport failure.  An ``int`` value means
        "idempotent iff the currently negotiated protocol version is at
        least this" — evaluated per attempt, so an ingest that
        negotiates down to a pre-dedupe server mid-call loses its resend
        permission with the downgrade.
        """
        last_exc: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            try:
                sock = self._connect()
            except OSError as exc:
                # Connecting is always safe to retry: nothing was sent.
                self.close()
                last_exc = exc
                if attempt >= self.retries:
                    raise ServiceUnavailable(
                        f"{self.host}:{self.port} unreachable after "
                        f"{attempt + 1} attempt(s): {exc}"
                    ) from exc
                self._sleep_backoff(attempt)
                continue
            try:
                protocol.send_message(
                    sock, {**message, "v": self.protocol_version}
                )
                response = protocol.recv_message(sock, self.max_frame)
            except (OSError, protocol.ProtocolError) as exc:
                self.close()
                last_exc = exc
                resendable = (
                    idempotent
                    if isinstance(idempotent, bool)
                    else self.protocol_version >= idempotent
                )
                if not resendable or attempt >= self.retries:
                    raise ServiceUnavailable(
                        f"{self.host}:{self.port} failed after "
                        f"{attempt + 1} attempt(s): {exc}"
                    ) from exc
                self._sleep_backoff(attempt)
                continue
            if response.get("ok"):
                return response.get("result", {})
            error = response.get("error") or {}
            code = error.get("code", protocol.ERR_INTERNAL)
            if (
                code in protocol.RETRYABLE_CODES
                and self.retry_overloaded
                and attempt < self.retries
            ):
                self._sleep_backoff(attempt)
                continue
            if code == protocol.ERR_VERSION and attempt < self.retries:
                negotiated = self._negotiate_version(error)
                if negotiated:
                    # Resend immediately at the agreed version.  Safe
                    # even for ingest: a version-rejected request was
                    # never applied.
                    continue
            raise ServerError(code, error.get("message", ""))
        raise ServiceUnavailable(
            f"{self.host}:{self.port} unreachable: {last_exc}"
        )

    def _negotiate_version(self, error: dict) -> bool:
        """Lower :attr:`protocol_version` into the server's advertised
        range; ``False`` when no common version exists (or the frame
        carries no usable advertisement)."""
        max_version = error.get("max_version")
        min_version = error.get("min_version", 1)
        if not isinstance(max_version, int) or not isinstance(
            min_version, int
        ):
            return False
        agreed = min(self.protocol_version, max_version)
        if agreed < max(min_version, 1) or agreed >= self.protocol_version:
            return False
        self.protocol_version = agreed
        return True

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    def query(
        self,
        fingerprints: np.ndarray,
        include_fingerprints: bool = False,
        deadline_ms: Optional[float] = None,
        request_id=None,
    ) -> list[WireResult]:
        """Statistical queries for a ``(B, D)`` (or ``(D,)``) matrix."""
        message = {
            "op": "query",
            "fingerprints": protocol.fingerprints_to_wire(fingerprints),
        }
        if include_fingerprints:
            message["include_fingerprints"] = True
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        if request_id is not None:
            message["id"] = request_id
        result = self._request(message)
        return [WireResult.from_wire(w) for w in result["results"]]

    def detect(
        self,
        fingerprints: np.ndarray,
        timecodes: np.ndarray,
        threshold: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> list[dict]:
        """Run the full detection pipeline on candidate fingerprints."""
        message = {
            "op": "detect",
            "fingerprints": protocol.fingerprints_to_wire(fingerprints),
            "timecodes": np.asarray(timecodes, dtype=np.float64).tolist(),
        }
        if threshold is not None:
            message["threshold"] = int(threshold)
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return self._request(message)["detections"]

    def ingest(
        self,
        fingerprints: np.ndarray,
        ids: np.ndarray,
        timecodes: np.ndarray,
        request_id: Optional[str] = None,
    ) -> dict:
        """Durably add records to a segmented server.

        Every ingest is stamped with a ``request_id`` (generated unless
        given), so against protocol-3 servers a transport failure is
        safely retried: the server dedupes a replayed frame and returns
        the original counts (with ``"deduped": true``).  Against older
        servers the request is never resent — they would double-apply —
        which was the only behaviour before version 3.
        """
        message = {
            "op": "ingest",
            "fingerprints": protocol.fingerprints_to_wire(fingerprints),
            "ids": np.asarray(ids, dtype=np.int64).tolist(),
            "timecodes": np.asarray(timecodes, dtype=np.float64).tolist(),
            "request_id": request_id or uuid.uuid4().hex,
        }
        return self._request(
            message, idempotent=protocol.INGEST_DEDUPE_VERSION
        )

    def stats(self) -> dict:
        return self._request({"op": "stats"})

    def health(self) -> dict:
        return self._request({"op": "health"})
