"""Service-side counters: request latencies and percentile summaries.

The service keeps a sliding window of per-request latencies (a bounded
deque — O(1) per request, constant memory) and computes p50/p99 on
demand for the ``stats`` handler.  Percentiles use the nearest-rank
method on the window, which is exact for the window and cheap at the
sizes involved.
"""

from __future__ import annotations

from collections import deque
from typing import Optional


def ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator``, 0.0 when the denominator is zero.

    Rates in stats payloads (cache hit rates, shed fractions) must stay
    total for monitoring — a quiet server reports 0.0, never NaN.
    """
    return numerator / denominator if denominator else 0.0


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile ``q`` (in [0, 100]) of *values*.

    Returns 0.0 for an empty list so the stats payload stays total.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


class LatencyWindow:
    """A bounded sliding window of request latencies (seconds)."""

    def __init__(self, maxlen: int = 4096):
        self._window: deque[float] = deque(maxlen=maxlen)
        self.count = 0
        self.total_seconds = 0.0

    def record(self, seconds: float) -> None:
        self._window.append(seconds)
        self.count += 1
        self.total_seconds += seconds

    def snapshot(self) -> dict:
        """Counters + window percentiles as a JSON-safe dict."""
        values = list(self._window)
        return {
            "count": self.count,
            "mean_ms": (
                self.total_seconds / self.count * 1e3 if self.count else 0.0
            ),
            "p50_ms": percentile(values, 50.0) * 1e3,
            "p99_ms": percentile(values, 99.0) * 1e3,
            "window": len(values),
        }


class Counter:
    """A named monotonic counter with an optional per-key breakdown."""

    def __init__(self):
        self.total = 0
        self.by_key: dict[str, int] = {}

    def add(self, n: int = 1, key: Optional[str] = None) -> None:
        self.total += n
        if key is not None:
            self.by_key[key] = self.by_key.get(key, 0) + n
