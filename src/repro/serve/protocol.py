"""Wire protocol of the detection service: length-prefixed JSON frames.

A frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON::

    frame := uint32_be(len(payload)) || payload

Every payload is one JSON object.  Requests carry an ``op`` (one of
``query``, ``detect``, ``ingest``, ``stats``, ``health``) plus
op-specific fields, an optional client-chosen ``id`` echoed back in the
response, and an optional protocol version ``v`` (absent means
version 1, the pre-versioning wire format).  Responses carry ``ok``,
the server's ``v``, and either ``result`` or
``error = {"code", "message"}``.  A request whose ``v`` the server
cannot speak is answered with an ``unsupported_version`` error frame
advertising ``min_version``/``max_version``, and the client negotiates
down.  The full frame and field reference is ``docs/serving.md``.

JSON is exact for this workload: Python serialises floats with their
shortest round-tripping repr, so float64 fingerprints and timecodes
survive the wire bit for bit — the property the service's equivalence
guarantee rests on (tested in ``tests/serve/test_protocol.py``).

Both blocking-socket helpers (used by the client) and asyncio helpers
(used by the server) live here so the two sides share one framing
implementation.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Optional

import numpy as np

from ..errors import ReproError
from ..index.s3 import SearchResult

#: Frames larger than this are refused by both sides (a corrupted or
#: hostile length prefix must not trigger an unbounded allocation).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct("!I")

#: Current wire protocol version.  Version 2 added the version field
#: itself and the ``prefilter`` block of the ``stats`` result.  Version 3
#: adds replay-safe ingestion and the liveness/readiness split: an
#: ``ingest`` request may carry a client-generated ``request_id`` that
#: the server dedupes (a replayed frame returns the original counts with
#: ``"deduped": true``), ``health`` results carry ``live``/``ready``,
#: and servers may answer ``not_ready`` while loading.  The
#: request/response shapes of the five ops are otherwise unchanged, so
#: version-1 and version-2 clients interoperate (the server still
#: answers them; it simply never sees a ``request_id`` from them).
PROTOCOL_VERSION = 3

#: Oldest request version the server still accepts.
MIN_PROTOCOL_VERSION = 1

#: First version whose servers dedupe replayed ``ingest`` frames —
#: clients may only resend an ingest after a transport failure when the
#: negotiated version is at least this (older servers would apply the
#: frame twice; they reject a v3-stamped request outright, which is what
#: makes the gate safe).
INGEST_DEDUPE_VERSION = 3

#: Error codes a response's ``error.code`` may carry.
ERR_BAD_REQUEST = "bad_request"
ERR_OVERLOADED = "overloaded"
ERR_DEADLINE = "deadline_exceeded"
ERR_SHUTTING_DOWN = "shutting_down"
ERR_NOT_READY = "not_ready"
ERR_UNAVAILABLE = "unavailable"
ERR_UNSUPPORTED = "unsupported"
ERR_VERSION = "unsupported_version"
ERR_INTERNAL = "internal"

#: Error codes that describe a transient server state: the request was
#: not applied and may be retried after backoff (the client does so when
#: ``retry_overloaded`` is set; the cluster router fails over instead).
RETRYABLE_CODES = frozenset(
    {ERR_OVERLOADED, ERR_NOT_READY, ERR_UNAVAILABLE}
)


class ProtocolError(ReproError):
    """A frame is malformed, truncated, oversized, or not valid JSON."""


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def encode_frame(message: dict) -> bytes:
    """Serialise *message* into one length-prefixed frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _LEN.pack(len(payload)) + payload


def _decode_payload(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


def _check_length(length: int, max_frame: int) -> None:
    if length > max_frame:
        raise ProtocolError(
            f"incoming frame of {length} bytes exceeds the "
            f"{max_frame}-byte limit"
        )


# ----------------------------------------------------------------------
# Blocking socket I/O (client side)
# ----------------------------------------------------------------------
def send_message(sock: socket.socket, message: dict) -> None:
    """Write one frame to a connected blocking socket."""
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(
    sock: socket.socket, max_frame: int = MAX_FRAME_BYTES
) -> dict:
    """Read one frame from a connected blocking socket."""
    header = _recv_exact(sock, _LEN.size)
    (length,) = _LEN.unpack(header)
    _check_length(length, max_frame)
    return _decode_payload(_recv_exact(sock, length))


# ----------------------------------------------------------------------
# Asyncio stream I/O (server side)
# ----------------------------------------------------------------------
async def read_message(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME_BYTES
) -> Optional[dict]:
    """Read one frame; ``None`` on a clean EOF between frames."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            "connection closed mid-length-prefix"
        ) from exc
    (length,) = _LEN.unpack(header)
    _check_length(length, max_frame)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame "
            f"({len(exc.partial)}/{length} bytes read)"
        ) from exc
    return _decode_payload(payload)


async def write_message(writer: asyncio.StreamWriter, message: dict) -> None:
    """Write one frame and flush it."""
    writer.write(encode_frame(message))
    await writer.drain()


# ----------------------------------------------------------------------
# Message construction
# ----------------------------------------------------------------------
def request_version(request: dict) -> int:
    """The protocol version a request speaks (absent ``v`` means 1)."""
    version = request.get("v", 1)
    if not isinstance(version, int) or isinstance(version, bool) or version < 1:
        raise ProtocolError(
            f"protocol version must be a positive integer, got {version!r}"
        )
    return version


#: Upper length bound of a client-chosen ``request_id`` (a uuid4 hex is
#: 32 characters; the bound only guards the dedupe table against abuse).
MAX_REQUEST_ID_LEN = 128


def request_dedupe_id(request: dict) -> Optional[str]:
    """The replay-dedupe ``request_id`` of a request, validated.

    Returns ``None`` when the field is absent (version-1/2 clients never
    send it); raises :class:`ProtocolError` when present but unusable.
    """
    request_id = request.get("request_id")
    if request_id is None:
        return None
    if (
        not isinstance(request_id, str)
        or not request_id
        or len(request_id) > MAX_REQUEST_ID_LEN
    ):
        raise ProtocolError(
            "request_id must be a non-empty string of at most "
            f"{MAX_REQUEST_ID_LEN} characters, got {request_id!r}"
        )
    return request_id


def ok_response(request: dict, result: dict) -> dict:
    return {
        "id": request.get("id"),
        "ok": True,
        "v": PROTOCOL_VERSION,
        "result": result,
    }


def error_response(
    request: Optional[dict],
    code: str,
    message: str,
    **extra,
) -> dict:
    """An error frame; ``extra`` fields land inside ``error`` (e.g. the
    ``min_version``/``max_version`` advertisement of ``ERR_VERSION``)."""
    return {
        "id": request.get("id") if request else None,
        "ok": False,
        "v": PROTOCOL_VERSION,
        "error": {"code": code, "message": message, **extra},
    }


def version_error(request: dict, version: int) -> dict:
    """The ``unsupported_version`` frame advertising the speakable range."""
    return error_response(
        request,
        ERR_VERSION,
        f"protocol version {version} is outside the supported range "
        f"[{MIN_PROTOCOL_VERSION}, {PROTOCOL_VERSION}]",
        min_version=MIN_PROTOCOL_VERSION,
        max_version=PROTOCOL_VERSION,
    )


# ----------------------------------------------------------------------
# numpy <-> wire conversions
# ----------------------------------------------------------------------
def fingerprints_to_wire(fingerprints: np.ndarray) -> list:
    """A ``(B, D)`` float query matrix as nested JSON-safe lists."""
    return np.asarray(fingerprints, dtype=np.float64).tolist()


def fingerprints_from_wire(value, ndims: int) -> np.ndarray:
    """Parse a request's ``fingerprints`` field into a ``(B, D)`` matrix."""
    try:
        arr = np.asarray(value, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"fingerprints are not numeric: {exc}") from exc
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2 or arr.shape[1] != ndims:
        raise ProtocolError(
            f"fingerprints must be (B, {ndims}), got shape {arr.shape}"
        )
    return arr


def result_to_wire(
    result: SearchResult, include_fingerprints: bool = False
) -> dict:
    """One per-query :class:`SearchResult` as a JSON-safe dict.

    ``rows`` / ``ids`` / ``timecodes`` always travel; the matched
    fingerprint bytes only on request (they dominate the frame size).
    """
    wire = {
        "count": len(result),
        "rows": result.rows.tolist(),
        "ids": result.ids.tolist(),
        "timecodes": result.timecodes.tolist(),
    }
    if include_fingerprints:
        wire["fingerprints"] = result.fingerprints.tolist()
    return wire
