"""Statistical Similarity Search (S³) for content-based video copy detection.

A complete reproduction of Joly, Buisson & Frélicot (ICDE 2005): the
statistical query paradigm and its Hilbert-curve index
(:mod:`repro.index`, :mod:`repro.hilbert`, :mod:`repro.distortion`), the
local video fingerprints (:mod:`repro.fingerprint`, :mod:`repro.video`) and
the voting-based copy detector (:mod:`repro.cbcd`) — plus the corpus and
experiment machinery regenerating every table and figure of the paper's
evaluation (:mod:`repro.corpus`, :mod:`repro.experiments`).

Quickstart::

    from repro import (FingerprintStore, NormalDistortionModel, S3Index)

    index = S3Index(store, model=NormalDistortionModel(20, sigma=20.0))
    result = index.statistical_query(query, alpha=0.8)
"""

from .cbcd import CopyDetector, Detection, DetectorConfig
from .distortion import (
    NormalDistortionModel,
    PerComponentNormalModel,
    estimate_distortion,
    radius_for_expectation,
)
from .errors import (
    ConfigurationError,
    ExtractionError,
    GeometryError,
    IndexError_,
    ReproError,
    StoreError,
    WALError,
)
from .fingerprint import ExtractorConfig, FingerprintExtractor
from .hilbert import HilbertCurve
from .index import (
    CompactionPolicy,
    FingerprintStore,
    PseudoDiskSearcher,
    S3Index,
    SearchResult,
    SegmentedS3Index,
    SequentialScanIndex,
    StoreBuilder,
    tune_depth,
)
from .video import VideoClip, generate_clip, generate_corpus

__version__ = "1.0.0"

__all__ = [
    "CompactionPolicy",
    "ConfigurationError",
    "CopyDetector",
    "Detection",
    "DetectorConfig",
    "ExtractionError",
    "ExtractorConfig",
    "FingerprintExtractor",
    "FingerprintStore",
    "GeometryError",
    "HilbertCurve",
    "IndexError_",
    "NormalDistortionModel",
    "PerComponentNormalModel",
    "PseudoDiskSearcher",
    "ReproError",
    "S3Index",
    "SearchResult",
    "SegmentedS3Index",
    "SequentialScanIndex",
    "StoreBuilder",
    "StoreError",
    "VideoClip",
    "WALError",
    "estimate_distortion",
    "generate_clip",
    "generate_corpus",
    "radius_for_expectation",
    "tune_depth",
    "__version__",
]
