"""Deterministic random-number helpers.

All stochastic code in the library accepts either an integer seed or a
ready-made :class:`numpy.random.Generator`.  Funnelling the conversion
through :func:`resolve_rng` keeps experiments reproducible and makes the
"seed or generator" convention uniform across the package.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def resolve_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` yields a fresh non-deterministic generator, an ``int`` a
    seeded one, and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split *rng* into *n* independent child generators.

    Children are derived through :class:`numpy.random.SeedSequence` spawning,
    so consuming randomness from one never perturbs the others.  Useful when
    an experiment wants per-trial determinism regardless of trial order.
    """
    seeds = rng.bit_generator.seed_seq.spawn(n)  # type: ignore[attr-defined]
    return [np.random.default_rng(s) for s in seeds]
