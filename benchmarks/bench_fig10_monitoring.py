"""Sec V-D / Fig. 10 — continuous TV monitoring of a broadcast stream.

Paper claims: the deployed monitor finds copies of archived material in a
live stream (Fig. 10's examples), raises almost no false alarms, and runs
faster than real time.
"""

from conftest import run_and_report

from repro.experiments import run_fig10


def test_monitoring_stream(benchmark, capsys):
    result = run_and_report(
        benchmark,
        capsys,
        lambda: run_fig10(
            num_videos=8,
            frames_per_video=150,
            db_rows=40_000,
            num_copies=3,
            seed=0,
        ),
    )
    assert result.recall == 1.0        # every spliced copy found, aligned
    assert result.false_alarms == 0
    assert result.realtime_factor > 0.1  # throughput is in real-time range
