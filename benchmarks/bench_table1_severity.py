"""Table I — retrieval rate for transformations of decreasing severity.

Paper claims: with alpha = 85% and the model calibrated on the most severe
transformation, (i) every milder transformation retrieves at least as well
as the reference, and (ii) R grows as the severity sigma-hat falls.
"""

from conftest import run_and_report

from repro.experiments import run_table1


def test_table1_severity_ladder(benchmark, capsys):
    result = run_and_report(
        benchmark,
        capsys,
        lambda: run_table1(
            num_clips=4,
            frames_per_clip=100,
            db_rows=50_000,
            max_queries=150,
            seed=0,
        ),
    )
    rows = result.rows  # sorted by decreasing severity
    reference_rate = rows[0].retrieval
    for row in rows[1:]:
        assert row.retrieval >= reference_rate - 0.05
    # Broad monotone trend: mildest third clearly above severest third.
    third = max(len(rows) // 3, 1)
    severe = sum(r.retrieval for r in rows[:third]) / third
    mild = sum(r.retrieval for r in rows[-third:]) / third
    assert mild >= severe
