"""Figs. 5 & 6 — statistical vs eps-range query across alpha.

Paper claims: (Fig. 5) retrieval rates of the two query types are
comparable at equal expectation; (Fig. 6) the statistical query is 17-132x
faster because the sphere's geometric constraint intersects a huge number
of bounding regions in dimension 20.
"""

from conftest import run_and_report

from repro.experiments import run_fig56


def test_fig5_fig6_statistical_vs_range(benchmark, capsys):
    result = run_and_report(
        benchmark,
        capsys,
        lambda: run_fig56(
            alphas=(0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95),
            db_rows=200_000,
            num_queries=100,
            num_range_queries=20,
            seed=0,
        ),
    )
    for row in result.rows:
        # Fig. 6: statistical query faster at every alpha.
        assert row.speedup > 1.0
        # Fig. 5: retrieval comparable (range cannot be much better).
        assert row.stat_retrieval >= row.range_retrieval - 0.15
    # Meaningful speed-ups on at least the mid-alpha range.
    assert max(row.speedup for row in result.rows) > 3.0
