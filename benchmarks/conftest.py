"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md §4) at laptop scale, times it through pytest-benchmark and prints
the rows/series the paper reports, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the whole evaluation section.
"""

from __future__ import annotations


def run_and_report(benchmark, capsys, fn):
    """Run *fn* once under the benchmark timer and print its rendering."""
    holder = {}

    def _invoke():
        holder["result"] = fn()

    benchmark.pedantic(_invoke, rounds=1, iterations=1)
    result = holder["result"]
    with capsys.disabled():
        print()
        print(result.render())
    return result

