"""Segment-sketch pre-filter — skip rate and admissibility at scale.

Acceptance gate for the pre-filter tier: on a 10^6-row archive sealed
into 64 temporally clustered segments, statistical queries at the
paper-default alpha must skip at least 50% of the (query, segment)
scan fan-out using only the always-resident sketches, while returning
results bit-identical to a pre-filter-off run — on both the batched
statistical path and the solo ε-range path.  The run also refreshes
``BENCH_prefilter.json`` at the repo root with one record per corpus
scale (10^5 and 10^6 rows by default; pass ``--rows N`` repeatedly to
sweep other scales up to 10^7), the machine-readable skip-rate/latency
trajectory later PRs regress against (schema in ``docs/prefilter.md``).

``python benchmarks/bench_prefilter.py --smoke`` runs a scaled-down
archive without pytest-benchmark — the CI smoke gate: the skip rate
must be nonzero and results must not diverge.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_prefilter_skip_rate(benchmark, capsys):
    from conftest import run_and_report

    from repro.experiments import run_prefilter, write_prefilter_json

    runs = []

    def _suite():
        runs.append(run_prefilter(
            db_rows=100_000, num_segments=64, num_queries=64,
            alpha=0.8, seed=0,
        ))
        runs.append(run_prefilter(
            db_rows=1_000_000, num_segments=64, num_queries=64,
            alpha=0.8, seed=0,
        ))
        write_prefilter_json(runs, REPO_ROOT / "BENCH_prefilter.json")
        return runs[-1]

    result = run_and_report(benchmark, capsys, _suite)
    # Admissibility: skipping is invisible in the answers.
    assert all(r.bit_identical for r in runs)
    assert all(r.range_bit_identical for r in runs)
    # Acceptance: >= 50% of the per-(query, segment) scan fan-out is
    # proved empty by the resident sketches at the 10^6-row scale.
    assert result.num_segments >= 64
    assert result.segment_skip_rate >= 0.5
    assert result.range_segment_skip_rate >= 0.5


def _smoke() -> int:
    """Tiny-archive CI gate: must skip, must not diverge."""
    from repro.experiments import run_prefilter

    result = run_prefilter(
        db_rows=24_000, num_segments=16, num_queries=32,
        alpha=0.8, seed=0,
    )
    print(result.render())
    failures = []
    if not result.bit_identical:
        failures.append(
            "statistical results diverge between prefilter on and off"
        )
    if not result.range_bit_identical:
        failures.append("range results diverge between prefilter on and off")
    if result.segments_skipped == 0:
        failures.append("pre-filter skipped nothing on a clustered archive")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _sweep(rows_list) -> int:
    """Record a custom scale sweep into BENCH_prefilter.json."""
    from repro.experiments import run_prefilter, write_prefilter_json

    runs = []
    for rows in rows_list:
        result = run_prefilter(
            db_rows=rows, num_segments=64, num_queries=64,
            alpha=0.8, seed=0,
        )
        print(result.render())
        print()
        runs.append(result)
    path = write_prefilter_json(runs, REPO_ROOT / "BENCH_prefilter.json")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--smoke" in argv:
        raise SystemExit(_smoke())
    if "--rows" in argv:
        rows = [
            int(argv[i + 1]) for i, a in enumerate(argv) if a == "--rows"
        ]
        raise SystemExit(_sweep(rows))
    print(__doc__)
    raise SystemExit(2)
