"""Ablation — threshold iteration B(t_max) vs exact best-first B_min_alpha.

Paper §IV-A argues sorting all 2^p blocks is unaffordable and settles for
the Newton-like threshold search.  This ablation quantifies the trade: the
exact best-first selection returns fewer blocks (minimal refinement) but
its scalar priority-queue filtering costs far more than the vectorised
threshold descents.
"""

import time
from dataclasses import dataclass

import numpy as np
from conftest import run_and_report

from repro.corpus.workload import model_queries
from repro.distortion.model import NormalDistortionModel
from repro.experiments.common import format_table
from repro.experiments.fig56_alpha_sweep import _synthetic_store
from repro.index.s3 import S3Index


@dataclass
class SelectionAblation:
    rows: list[tuple]

    def render(self) -> str:
        return format_table(
            [
                "method", "mean blocks", "mean rows", "mean filter (ms)",
                "retrieval (%)",
            ],
            self.rows,
            title="Ablation — block selection strategy (alpha=80%)",
        )


def _run() -> SelectionAblation:
    rng = np.random.default_rng(0)
    store = _synthetic_store(60_000, rng)
    index = S3Index(store, model=NormalDistortionModel(20, 18.0), depth=16)
    workload = model_queries(store, 20, 18.0, rng=rng)

    rows = []
    for label, exact in (("threshold B(t_max)", False), ("best-first B_min", True)):
        blocks = scanned = hits = 0
        elapsed = 0.0
        for i in range(len(workload)):
            t0 = time.perf_counter()
            result = index.statistical_query(
                workload.queries[i], 0.8, exact_blocks=exact
            )
            elapsed += time.perf_counter() - t0
            blocks += result.stats.blocks_selected
            scanned += result.stats.rows_scanned
            hits += workload.retrieved(i, result.fingerprints)
        n = len(workload)
        rows.append(
            (label, blocks / n, scanned / n, elapsed / n * 1e3, hits / n * 100)
        )
    return SelectionAblation(rows=rows)


def test_block_selection_tradeoff(benchmark, capsys):
    result = run_and_report(benchmark, capsys, _run)
    threshold_row, best_first_row = result.rows
    # Best-first selects no more blocks than the threshold method...
    assert best_first_row[1] <= threshold_row[1]
    # ...but costs more filtering time (the paper's "not affordable").
    assert best_first_row[3] > threshold_row[3]
    # Both meet the expectation roughly.
    assert threshold_row[4] >= 60.0
    assert best_first_row[4] >= 60.0
