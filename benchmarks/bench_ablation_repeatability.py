"""Ablation — interest-point repeatability vs transformation severity.

Paper §IV-C: inflating the model's sigma to cover ever more severe
transformations eventually buys nothing, because "the interest point
detector repeatability will be close to zero for transformations that are
too severe" — no retrievable fingerprint exists at the mapped position in
the first place.  This ablation measures the Schmid-Mohr repeatability
across a severity ladder and exposes that collapsing tail.
"""

from dataclasses import dataclass

from conftest import run_and_report

from repro.experiments.common import format_table
from repro.fingerprint.repeatability import measure_repeatability
from repro.video.synthetic import generate_clip
from repro.video.transforms import GaussianNoise, Resize


@dataclass
class RepeatabilityAblation:
    rows: list[tuple]

    def render(self) -> str:
        return format_table(
            ["transformation", "repeatability (%)", "reference points"],
            self.rows,
            title="Ablation — detector repeatability vs severity (sec IV-C)",
        )


def _run() -> RepeatabilityAblation:
    clip = generate_clip(80, seed=0)
    ladder = [
        Resize(0.95),
        Resize(0.80),
        Resize(0.60),
        GaussianNoise(5.0, seed=1),
        GaussianNoise(25.0, seed=2),
        GaussianNoise(80.0, seed=3),
    ]
    rows = []
    for transform in ladder:
        result = measure_repeatability(clip, transform, frame_step=10)
        rows.append(
            (
                result.transform_label,
                result.repeatability * 100,
                result.num_reference_points,
            )
        )
    return RepeatabilityAblation(rows=rows)


def test_repeatability_collapses_with_severity(benchmark, capsys):
    result = run_and_report(benchmark, capsys, _run)
    by_label = {r[0]: r[1] for r in result.rows}
    # Within each family the ladder is monotone non-increasing...
    assert by_label["scale(w_scale=0.95)"] >= by_label["scale(w_scale=0.8)"]
    assert by_label["scale(w_scale=0.8)"] >= by_label["scale(w_scale=0.6)"]
    assert by_label["noise(w_noise=5)"] >= by_label["noise(w_noise=25)"]
    assert by_label["noise(w_noise=25)"] >= by_label["noise(w_noise=80)"]
    # ...and the severe end has genuinely collapsed.
    assert by_label["noise(w_noise=80)"] < by_label["noise(w_noise=5)"] / 2
