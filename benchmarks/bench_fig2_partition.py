"""Fig. 2 — Hilbert p-block partitions in 2-D (illustration + invariants).

Paper claim: the regular partition of the curve into 2^p intervals induces
2^p hyper-rectangular blocks of equal volume and shape.
"""

from conftest import run_and_report

from repro.experiments import run_fig2


def test_fig2_partition(benchmark, capsys):
    result = run_and_report(
        benchmark, capsys, lambda: run_fig2(order=4, depths=(3, 4, 5))
    )
    for summary in result.summaries:
        assert summary.covers_grid and summary.disjoint
        assert len(summary.distinct_shapes) == 1
