"""Ablation — temporal-only vs spatio-temporal voting (paper §VI).

The paper's stated future work: extend the estimation step to the spatial
positions of the interest points to improve discriminance.  This ablation
feeds both voting strategies the same matches: a planted copy (coherent in
time AND space) and a confusable identifier whose matches are temporally
coherent but spatially scrambled (e.g. different footage of a static
scene).  Temporal voting scores both identically; the spatial extension
separates them.
"""

from dataclasses import dataclass

import numpy as np
from conftest import run_and_report

from repro.cbcd.spatial import SpatioTemporalMatch, spatio_temporal_vote
from repro.cbcd.voting import QueryMatches, vote
from repro.experiments.common import format_table


@dataclass
class SpatialAblation:
    rows: list[tuple]

    def render(self) -> str:
        return format_table(
            ["identifier", "n_sim temporal", "n_sim spatio-temporal"],
            self.rows,
            title="Ablation — voting discriminance with spatial estimation (sec VI)",
        )


def _run() -> SpatialAblation:
    rng = np.random.default_rng(0)
    num = 30
    copy_id, confusable_id = 1, 2

    st_matches = []
    t_matches = []
    for tc in np.arange(0, num * 2.0, 2.0):
        cand_pos = rng.uniform(10, 60, 2)
        # Planted copy: temporal offset -10, spatial translation (6, -4).
        # Confusable id: same temporal coherence, random positions.
        ids = np.array([copy_id, confusable_id], dtype=np.uint32)
        tcs = np.array([tc + 10.0, tc + 10.0])
        positions = np.vstack(
            [cand_pos - np.array([6.0, -4.0]), rng.uniform(10, 60, 2)]
        )
        st_matches.append(
            SpatioTemporalMatch(
                timecode=float(tc), position=cand_pos,
                ids=ids, timecodes=tcs, positions=positions,
            )
        )
        t_matches.append(
            QueryMatches(timecode=float(tc), ids=ids, timecodes=tcs)
        )

    temporal = {v.video_id: v.nsim for v in vote(t_matches)}
    spatial = {
        v.video_id: v.nsim
        for v in spatio_temporal_vote(st_matches, spatial_tolerance=3.0)
    }
    rows = [
        ("planted copy", temporal[copy_id], spatial[copy_id]),
        ("confusable id", temporal[confusable_id], spatial[confusable_id]),
    ]
    return SpatialAblation(rows=rows)


def test_spatial_voting_separates_confusables(benchmark, capsys):
    result = run_and_report(benchmark, capsys, _run)
    copy_row, confusable_row = result.rows
    # Temporal-only voting cannot tell the two apart.
    assert copy_row[1] == confusable_row[1]
    # The spatial extension keeps the copy's votes and drops the impostor's.
    assert copy_row[2] >= copy_row[1] - 1
    assert confusable_row[2] < confusable_row[1] // 2
