"""Ablation — Hilbert curve vs Z-order (Morton) ordering.

The paper adopts the Hilbert curve following Faloutsos: "the Hilbert's
curve clustering property limits the number and the dispersion of these
sections".  This ablation builds the same database under both orderings
and measures, for the same statistical queries, how many contiguous row
sections the selected blocks merge into — the direct driver of refinement
memory-access dispersion.
"""

from dataclasses import dataclass

import numpy as np
from conftest import run_and_report

from repro.corpus.workload import model_queries
from repro.distortion.model import NormalDistortionModel
from repro.experiments.common import format_table
from repro.experiments.fig56_alpha_sweep import _synthetic_store
from repro.hilbert.morton import MortonIndex
from repro.index.s3 import S3Index


@dataclass
class CurveAblation:
    rows: list[tuple]

    def render(self) -> str:
        return format_table(
            ["depth p", "Hilbert sections/query", "Morton sections/query",
             "Hilbert rows/query", "Morton rows/query"],
            self.rows,
            title="Ablation — curve choice: Hilbert vs Z-order (sec IV)",
        )


def _run() -> CurveAblation:
    rng = np.random.default_rng(0)
    store = _synthetic_store(100_000, rng)
    sigma = 18.0
    model = NormalDistortionModel(20, sigma)
    workload = model_queries(store, 25, sigma, rng=rng)

    rows = []
    for depth in (12, 16, 20):
        hilbert = S3Index(store, model=model, depth=depth)
        morton = MortonIndex(store, model=model, depth=depth)
        h_sections = h_rows = m_sections = m_rows = 0
        for q in workload.queries:
            selection = hilbert.block_selection(q, 0.8)
            ranges = hilbert.row_ranges(selection)
            h_sections += len(ranges)
            h_rows += sum(e - s for s, e in ranges)
            m_row_ids, _, sections = morton.statistical_query(q, 0.8)
            m_sections += sections
            m_rows += m_row_ids.size
        n = len(workload)
        rows.append(
            (depth, h_sections / n, m_sections / n, h_rows / n, m_rows / n)
        )
    return CurveAblation(rows=rows)


def test_hilbert_limits_section_dispersion(benchmark, capsys):
    result = run_and_report(benchmark, capsys, _run)
    for depth, h_sec, m_sec, _h_rows, _m_rows in result.rows:
        assert h_sec <= m_sec, f"Morton beat Hilbert at depth {depth}"
    # The advantage grows with depth (finer partitions fragment Z-order).
    gaps = [m / max(h, 1e-9) for _, h, m, _, _ in result.rows]
    assert gaps[-1] >= gaps[0] * 0.8  # at least not collapsing
