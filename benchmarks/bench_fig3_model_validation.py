"""Fig. 3 — retrieval rate R vs statistical-query expectation alpha.

Paper claim: with the model calibrated on a combined transformation, R
tracks alpha (the paper sees |R - alpha| <= 7 pts; our synthetic
distortions are heavier-tailed, see EXPERIMENTS.md, so we assert a looser
envelope and the monotone trend).
"""

from conftest import run_and_report

from repro.experiments import run_fig3


def test_fig3_model_validation(benchmark, capsys):
    result = run_and_report(
        benchmark,
        capsys,
        lambda: run_fig3(
            num_clips=4,
            frames_per_clip=100,
            db_rows=50_000,
            max_queries=150,
            seed=0,
        ),
    )
    rates = result.retrieval.y
    assert rates[-1] > rates[0]  # R grows with alpha
    assert result.max_error <= 0.25
