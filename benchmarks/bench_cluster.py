"""Sharded cluster under fire — scatter-gather identity and failover.

Acceptance gate for the cluster subsystem: plan a sealed corpus into 2
shards x 2 replicas, launch the real process topology (one interpreter
per replica, supervisor-healed), and drive mixed query/ingest traffic
through the scatter-gather router while one replica is SIGKILLed
mid-storm.  The run must finish with **zero client-visible errors** —
retries plus replica failover plus shard-side ingest dedupe absorb the
kill — and the pre-storm query batch must come back bit-identical to
the single-node engine.

``python benchmarks/bench_cluster.py --smoke`` is the CI job: 2 shards
over a 50k-row corpus, process mode, one replica killed mid-run.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_cluster_scatter_gather(benchmark, capsys):
    from conftest import run_and_report

    from repro.experiments import run_cluster_bench

    result = run_and_report(
        benchmark,
        capsys,
        lambda: run_cluster_bench(
            db_rows=50_000,
            num_shards=2,
            replicas=2,
            mode="process",
            seed=0,
            json_path=REPO_ROOT / "BENCH_cluster.json",
        ),
    )
    assert result.bit_identical
    assert result.zero_client_errors, result.request_errors
    assert result.replica_killed
    assert result.supervisor_restarts >= 1


def _smoke() -> int:
    """50k rows, 2 shards x 2 replicas, SIGKILL one replica mid-storm."""
    from repro.experiments import run_cluster_bench

    result = run_cluster_bench(
        db_rows=50_000,
        num_shards=2,
        replicas=2,
        mode="process",
        seed=0,
    )
    print(result.render())
    failures = []
    if not result.bit_identical:
        failures.append(
            "routed results diverge from the single-node engine"
        )
    if not result.replica_killed:
        failures.append("no replica was killed; the storm proved nothing")
    if result.request_errors:
        failures.append(
            f"{len(result.request_errors)} client-visible error(s) "
            f"during SIGKILL+heal: {result.request_errors[:3]}"
        )
    if result.requests_sent == 0:
        failures.append("storm sent no requests")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        raise SystemExit(_smoke())
    print(__doc__)
    raise SystemExit(2)
