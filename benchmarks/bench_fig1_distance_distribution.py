"""Fig. 1 — pdf of the distortion distance: real vs normal vs uniform.

Paper claim: the i.i.d. normal model is close to the real distribution of
``||dS||`` while the uniform-spherical assumption (volume-percentage error
measure) is far off.  Pass condition: KS(normal) << KS(uniform).
"""

from conftest import run_and_report

from repro.experiments import run_fig1


def test_fig1_distance_distribution(benchmark, capsys):
    result = run_and_report(
        benchmark,
        capsys,
        lambda: run_fig1(num_clips=4, frames_per_clip=120, num_bins=28, seed=0),
    )
    assert result.ks_normal < result.ks_uniform
