"""Ablation — shared-sigma vs per-component distortion model (paper §VI).

The paper collapses the per-component deviations sigma_j to their mean;
§VI suggests richer modelling "should probably improve the efficiency and
the precision".  This ablation runs real calibrated distortions through
both models at equal alpha and compares retrieval and scan volume.
"""

from dataclasses import dataclass

import numpy as np
from conftest import run_and_report

from repro.corpus.filler import scale_store
from repro.experiments.common import format_table
from repro.experiments.fig3_model_validation import combined_transform
from repro.fingerprint.calibration import collect_pairs
from repro.index.s3 import S3Index
from repro.index.store import FingerprintStore
from repro.video.synthetic import generate_corpus


@dataclass
class ModelAblation:
    rows: list[tuple]

    def render(self) -> str:
        return format_table(
            ["model", "alpha (%)", "retrieval (%)", "mean rows scanned"],
            self.rows,
            title="Ablation — distortion model variants (sec VI)",
        )


def _run() -> ModelAblation:
    rng = np.random.default_rng(0)
    clips = generate_corpus(3, 100, seed=rng)
    pairs = collect_pairs(clips, combined_transform(), delta_pix=1.0, rng=rng)
    estimate = pairs.estimate()
    shared = estimate.normal_model()
    per_component = estimate.per_component_model()
    empirical = pairs.empirical_model()

    keep = min(len(pairs), 250)
    sel = rng.permutation(len(pairs))[:keep]
    originals = pairs.reference[sel]
    queries = pairs.distorted[sel].astype(np.float64)
    base = FingerprintStore(
        fingerprints=originals,
        ids=np.zeros(keep, dtype=np.uint32),
        timecodes=np.arange(keep, dtype=np.float64),
    )
    store = scale_store(base, 50_000, rng=rng)
    index = S3Index(store, depth=20)

    rows = []
    for label, model in (
        ("shared sigma (paper)", shared),
        ("per-component sigma_j", per_component),
        ("empirical marginals", empirical),
    ):
        for alpha in (0.7, 0.9):
            index.reset_threshold_cache()
            hits = scanned = 0
            for i in range(keep):
                result = index.statistical_query(queries[i], alpha, model=model)
                scanned += result.stats.rows_scanned
                if len(result) and np.any(
                    np.all(result.fingerprints == originals[i], axis=1)
                ):
                    hits += 1
            rows.append(
                (label, alpha * 100, hits / keep * 100, scanned / keep)
            )
    return ModelAblation(rows=rows)


def test_per_component_model_tracks_alpha_better(benchmark, capsys):
    result = run_and_report(benchmark, capsys, _run)
    by_key = {(r[0], r[1]): r for r in result.rows}
    shared_hi = by_key[("shared sigma (paper)", 90.0)]
    per_comp_hi = by_key[("per-component sigma_j", 90.0)]
    empirical_hi = by_key[("empirical marginals", 90.0)]
    # The refined models recover at least as many originals at alpha=90%.
    assert per_comp_hi[2] >= shared_hi[2] - 2.0
    assert empirical_hi[2] >= shared_hi[2] - 2.0
