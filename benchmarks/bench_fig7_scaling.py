"""Fig. 7 — mean search time vs database size: S3 vs sequential scan.

Paper claims: the sequential scan is linear in the DB size while the S3
search is sub-linear, so the gain grows with the size (x2500 at the
paper's 1.5G-fingerprint extreme).
"""

from conftest import run_and_report

from repro.experiments import run_fig7


def test_fig7_scaling(benchmark, capsys):
    result = run_and_report(
        benchmark,
        capsys,
        lambda: run_fig7(
            db_sizes=(10_000, 40_000, 160_000, 640_000),
            num_queries=30,
            num_scan_queries=5,
            seed=0,
        ),
    )
    s3_slope, scan_slope = result.loglog_slopes()
    assert scan_slope > 0.6          # sequential scan ~linear
    assert s3_slope < scan_slope      # S3 sub-linear in comparison
    gains = [row.gain for row in result.rows]
    # Growing gain; at the top of the ladder S3 wins by a wide margin (the
    # smallest DB can favour the scan - pure vectorised pass vs Python
    # per-query filtering - exactly why the paper starts at 77k rows).
    assert gains[-1] > gains[0]
    assert gains[-1] > 5.0
