"""Fig. 9 — detection-rate abacuses vs transform severity, by alpha.

Paper claims: the detection rate stays nearly invariant as alpha drops
from 95% to 70% while the search gets ~4x faster; degradation only sets in
around alpha = 50% for the severest transformations.
"""

from conftest import run_and_report

from repro.experiments import run_fig9
from repro.experiments.abacus import build_setup


def test_fig9_alpha_abacuses(benchmark, capsys):
    setup = build_setup(
        num_videos=10,
        frames_per_video=150,
        num_candidates=6,
        candidate_frames=70,
        seed=0,
    )
    result = run_and_report(
        benchmark,
        capsys,
        lambda: run_fig9(
            alphas=(0.95, 0.9, 0.8, 0.7, 0.5),
            db_rows=60_000,
            setup=setup,
            decision_threshold=8,
        ),
    )
    # Rates stable from 95% down to 70%.
    assert abs(result.rate_at(0.95) - result.rate_at(0.7)) <= 0.25
    # Search gets cheaper as alpha falls.
    times = result.abacus.search_times
    assert times["alpha=50%"] <= times["alpha=95%"]
