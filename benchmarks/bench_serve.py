"""Detection service — cross-client micro-batching vs per-query serving.

Acceptance gate for the serving layer: with >= 16 concurrent clients
against a >= 50k-fingerprint corpus, the micro-batched server must beat
one-request-per-query serving end to end (sockets and framing included)
while the served results stay bit-identical to solo in-process
deterministic statistical queries.  The run refreshes
``BENCH_serve.json`` at the repo root — the machine-readable perf
record later PRs regress against (schema in ``docs/serving.md``).

``python benchmarks/bench_serve.py --smoke`` boots the server against a
tiny corpus with concurrent clients — the CI serve-smoke gate: results
must not diverge, nothing may be shed, the server must drain cleanly.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_serve_batching_speedup(benchmark, capsys):
    from conftest import run_and_report

    from repro.experiments import run_serve_bench

    result = run_and_report(
        benchmark,
        capsys,
        lambda: run_serve_bench(
            db_rows=50_000,
            num_clients=16,
            queries_per_client=16,
            max_batch=32,
            max_wait_ms=2.0,
            alpha=0.8,
            seed=0,
            json_path=REPO_ROOT / "BENCH_serve.json",
        ),
    )
    # Equivalence: what the sockets served is what the engine computes.
    assert result.bit_identical_results
    assert result.shed == 0
    # Batching actually aggregated concurrent clients' queries.
    assert result.batched_mean_fill > 1.0
    # Acceptance: cross-client batching beats one-request-per-query
    # serving at 16 concurrent connections.
    assert result.speedup > 1.0


def _smoke() -> int:
    """Tiny-corpus CI gate: never divergent, never shedding, drains."""
    from repro.experiments import run_serve_bench

    result = run_serve_bench(
        db_rows=6_000,
        num_clients=8,
        queries_per_client=6,
        max_batch=32,
        max_wait_ms=5.0,
        alpha=0.8,
        seed=0,
    )
    print(result.render())
    failures = []
    if not result.bit_identical_results:
        failures.append(
            "served results diverge from solo in-process queries"
        )
    if result.shed != 0:
        failures.append(
            f"server shed {result.shed} queries under nominal load"
        )
    if result.batched_mean_fill <= 1.0:
        failures.append(
            "micro-batcher never aggregated concurrent queries "
            f"(mean fill {result.batched_mean_fill:.2f})"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        raise SystemExit(_smoke())
    print(__doc__)
    raise SystemExit(2)
