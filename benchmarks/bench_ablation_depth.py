"""Ablation — partition depth p: T(p) = T_f(p) + T_r(p) (paper §IV-A).

Paper claim: the filtering time grows with p, the refinement time shrinks,
and the total response time has a single minimum p_min that can be learned
on sample queries at the start of the retrieval stage.
"""

from dataclasses import dataclass

import numpy as np
from conftest import run_and_report

from repro.corpus.workload import model_queries
from repro.distortion.model import NormalDistortionModel
from repro.experiments.common import format_table
from repro.experiments.fig56_alpha_sweep import _synthetic_store
from repro.index.s3 import S3Index
from repro.index.tuning import DepthProfile, tune_depth


@dataclass
class DepthAblation:
    profiles: list[DepthProfile]
    best_depth: int

    def render(self) -> str:
        rows = [
            (
                p.depth,
                p.filter_seconds * 1e3,
                p.refine_seconds * 1e3,
                p.total_seconds * 1e3,
                p.rows_scanned,
                p.blocks_selected,
            )
            for p in self.profiles
        ]
        table = format_table(
            ["depth p", "T_f (ms)", "T_r (ms)", "T (ms)", "rows", "blocks"],
            rows,
            title="Ablation — response time vs partition depth (sec IV-A)",
        )
        return table + f"\nlearned p_min = {self.best_depth}"


def _run() -> DepthAblation:
    rng = np.random.default_rng(0)
    store = _synthetic_store(150_000, rng)
    index = S3Index(store, model=NormalDistortionModel(20, 18.0))
    workload = model_queries(store, 25, 18.0, rng=rng)
    depths = [6, 10, 14, 18, 22, 26, 30]
    # One measuring pass: tune_depth profiles and applies in one go, so the
    # reported p_min is the argmin of the profiles shown (re-measuring would
    # let timing noise pick a different depth).
    best, profiles = tune_depth(index, workload.queries, 0.8, depths=depths)
    return DepthAblation(profiles=profiles, best_depth=best)


def test_depth_tradeoff(benchmark, capsys):
    result = run_and_report(benchmark, capsys, _run)
    profiles = result.profiles
    # Refinement rows shrink with depth; block counts grow.
    assert profiles[-1].rows_scanned < profiles[0].rows_scanned
    assert profiles[-1].blocks_selected >= profiles[0].blocks_selected
    # The learned optimum beats both extremes.
    totals = {p.depth: p.total_seconds for p in profiles}
    assert totals[result.best_depth] <= totals[profiles[0].depth]
    assert totals[result.best_depth] <= totals[profiles[-1].depth]
