"""Ablation — k-NN search vs statistical query for copy detection.

Paper §I argues that k-nearest-neighbour queries are ill-suited to CBCD
because "the number of relevant fingerprints for a given query is highly
variable": in a large TV archive some clips are duplicated hundreds of
times while others are unique.  This ablation plants queries whose
relevant-set size varies from 1 to 64 duplicates and measures the *recall
of relevant fingerprints*: any fixed k misses duplicates when the relevant
set exceeds k, while the statistical query's result set adapts.
"""

from dataclasses import dataclass

import numpy as np
from conftest import run_and_report

from repro.distortion.model import NormalDistortionModel
from repro.experiments.common import format_table
from repro.experiments.fig56_alpha_sweep import _synthetic_store
from repro.index.s3 import S3Index
from repro.index.seqscan import SequentialScanIndex
from repro.index.store import FingerprintStore


@dataclass
class KnnAblation:
    rows: list[tuple]

    def render(self) -> str:
        return format_table(
            ["duplication", "recall kNN k=10 (%)", "recall S3 a=80% (%)"],
            self.rows,
            title="Ablation — fixed-k search vs statistical query (sec I)",
        )


def _run() -> KnnAblation:
    rng = np.random.default_rng(0)
    sigma = 8.0
    background = _synthetic_store(40_000, rng)

    rows = []
    for duplication in (1, 4, 16, 64):
        # Plant `duplication` noisy copies of 20 seed fingerprints.
        seeds = rng.integers(30, 226, size=(20, 20)).astype(np.float64)
        planted = np.repeat(seeds, duplication, axis=0)
        planted = np.clip(
            planted + rng.normal(0, sigma, planted.shape), 0, 255
        ).astype(np.uint8)
        marker = 900_000  # identifies relevant rows
        plant_store = FingerprintStore(
            fingerprints=planted,
            ids=np.full(planted.shape[0], marker, dtype=np.uint32),
            timecodes=np.zeros(planted.shape[0]),
        )
        store = FingerprintStore.concatenate([background, plant_store])
        index = S3Index(store, model=NormalDistortionModel(20, sigma), depth=20)
        scan = SequentialScanIndex(store)

        knn_recall = []
        stat_recall = []
        for i, seed_fp in enumerate(seeds):
            query = np.clip(seed_fp + rng.normal(0, sigma, 20), 0, 255)
            knn = scan.knn_query(query, k=10)
            knn_hits = int(np.sum(knn.ids == marker))
            stat = index.statistical_query(query, 0.8)
            stat_hits = int(np.sum(stat.ids == marker))
            knn_recall.append(min(knn_hits, duplication) / duplication)
            stat_recall.append(min(stat_hits, duplication) / duplication)
        rows.append(
            (
                duplication,
                float(np.mean(knn_recall)) * 100,
                float(np.mean(stat_recall)) * 100,
            )
        )
    return KnnAblation(rows=rows)


def test_fixed_k_misses_duplicated_material(benchmark, capsys):
    result = run_and_report(benchmark, capsys, _run)
    by_dup = {r[0]: r for r in result.rows}
    # With 64 duplicates, k=10 caps recall under ~16%; S3 keeps adapting.
    assert by_dup[64][1] <= 20.0
    assert by_dup[64][2] > by_dup[64][1]
    # With a unique relevant fingerprint both do fine.
    assert by_dup[1][1] >= 60.0
