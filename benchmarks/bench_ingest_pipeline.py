"""Pipelined ingest — group commit, storm p99 and snapshot isolation.

Acceptance gates for the pipelined ingest path: sustained acknowledged
ingest throughput under ``durability="group"`` must be at least 3x the
per-request-fsync baseline (``"always"``); query p99 while the
maintenance worker seals and compacts in the background must stay
within 2x the quiesced p99 over the same sweeps; and every answer
during the storm must be bit-identical (as a multiset of records) to
the quiesced run.  The run refreshes ``BENCH_ingest_pipeline.json`` at
the repo root — the machine-readable throughput/latency record later
PRs regress against (schema in ``docs/segmented-index.md``).

``python benchmarks/bench_ingest_pipeline.py --smoke`` runs a
scaled-down version without pytest-benchmark — the CI ``ingest-smoke``
gate: all three gates must hold.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_ingest_pipeline_gates(benchmark, capsys):
    from conftest import run_and_report

    from repro.experiments import (
        run_ingest_pipeline,
        write_ingest_pipeline_json,
    )
    from repro.experiments.ingest_pipeline import (
        MAX_P99_RATIO,
        MIN_GROUP_SPEEDUP,
    )

    def _suite():
        result = run_ingest_pipeline(db_rows=12_000, seed=0)
        write_ingest_pipeline_json(
            result, REPO_ROOT / "BENCH_ingest_pipeline.json"
        )
        return result

    result = run_and_report(benchmark, capsys, _suite)
    # Group commit must carry its weight under concurrent writers...
    assert result.group_speedup >= MIN_GROUP_SPEEDUP
    assert result.group_commits > 0
    # ...the storm must actually have churned in the background...
    assert result.storm_seals > 0
    assert result.storm_compactions > 0
    # ...without queries paying for it, or seeing it.
    assert result.p99_ratio <= MAX_P99_RATIO
    assert result.bit_identical


def _smoke() -> int:
    """Scaled-down CI gate: all three ingest-pipeline gates must hold."""
    from repro.experiments import run_ingest_pipeline

    result = run_ingest_pipeline(
        db_rows=4_000,
        ingest_threads=24,
        requests_per_thread=24,
        num_queries=12,
        storm_sweeps=4,
        storm_segments=6,
        seed=0,
    )
    print(result.render())
    failures = []
    if result.gate_status() != "passed":
        failures.append(result.gate_status())
    if result.storm_seals == 0 or result.storm_compactions == 0:
        failures.append("maintenance worker did no background work")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--smoke" in argv:
        raise SystemExit(_smoke())
    print(__doc__)
    raise SystemExit(2)
