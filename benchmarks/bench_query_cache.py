"""Serve-path caching — warm Zipf repeat traffic vs cache-off serving.

Acceptance gate for the caching stack: on a Zipf repeat trace over a
50k-fingerprint corpus, the cache-warm pass must clear >= 3x the
cache-off throughput while every served answer stays bit-identical to
a solo in-process deterministic statistical query.  The run refreshes
``BENCH_query_cache.json`` at the repo root — the machine-readable
perf record later PRs regress against (schema in ``docs/serving.md``).

``python benchmarks/bench_query_cache.py --smoke`` replays a tiny
trace through the cached server — the CI cache-smoke gate: results
must not diverge and the cache must actually get hit.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_query_cache_speedup(benchmark, capsys):
    from conftest import run_and_report

    from repro.experiments import run_query_cache
    from repro.experiments.query_cache import GATE_MIN_SPEEDUP

    result = run_and_report(
        benchmark,
        capsys,
        lambda: run_query_cache(
            db_rows=50_000,
            unique_queries=64,
            num_queries=512,
            num_clients=8,
            zipf_s=1.1,
            alpha=0.8,
            seed=0,
            json_path=REPO_ROOT / "BENCH_query_cache.json",
        ),
    )
    # Equivalence: cached answers equal cold solo engine queries.
    assert result.bit_identical_results
    # The trace actually repeated and the LRU actually answered.
    assert result.hit_rate > 0.5
    # Acceptance: the warm pass clears the >= 3x QPS gate.
    assert result.speedup >= GATE_MIN_SPEEDUP


def _smoke() -> int:
    """Tiny-trace CI gate: cached serving never diverges, cache hits."""
    from repro.experiments import run_query_cache

    result = run_query_cache(
        db_rows=6_000,
        unique_queries=16,
        num_queries=96,
        num_clients=4,
        alpha=0.8,
        seed=0,
    )
    print(result.render())
    failures = []
    if not result.bit_identical_results:
        failures.append(
            "cached results diverge from solo in-process queries"
        )
    if result.cache_hits == 0:
        failures.append("the result cache was never hit")
    if result.hit_rate <= 0.25:
        failures.append(
            f"hit rate {result.hit_rate:.2f} too low for a repeat trace"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        raise SystemExit(_smoke())
    print(__doc__)
    raise SystemExit(2)
