"""Batched multi-query engine — speedup over the per-fingerprint loop.

Acceptance gate for the batched engine: on a >= 50k-fingerprint corpus
with batch >= 32, the shared block selection + coalesced scan must be at
least 2x faster than the sequential per-fingerprint loop while returning
bit-identical results (and therefore bit-identical detections) in
deterministic mode.  The run also refreshes ``BENCH_batch_query.json``
at the repo root — the machine-readable perf record later PRs regress
against (schema in ``docs/batch-query.md``).

``python benchmarks/bench_batch_query.py --smoke`` runs a scaled-down
corpus without pytest-benchmark — the CI smoke gate: batched must not be
slower than sequential, results must not diverge.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_batch_query_speedup(benchmark, capsys):
    from conftest import run_and_report

    from repro.experiments import run_batch_query

    result = run_and_report(
        benchmark,
        capsys,
        lambda: run_batch_query(
            db_rows=50_000,
            num_queries=256,
            batch_size=64,
            workers=1,
            alpha=0.8,
            seed=0,
            json_path=REPO_ROOT / "BENCH_batch_query.json",
        ),
    )
    # Equivalence: deterministic batched == deterministic sequential,
    # row for row, bit for bit — so the voting stage agrees too.
    assert result.bit_identical_results
    assert result.identical_detections
    assert result.num_detections > 0
    # Acceptance: >= 2x over the sequential per-fingerprint loop.  The
    # warm-chained loop is the fastest sequential baseline; clearing it
    # clears the deterministic one a fortiori.
    assert result.speedup_vs_warm >= 2.0
    assert result.speedup_vs_deterministic >= 2.0
    # Coalescing actually deduplicates rows across the batch.
    assert result.coalescing_factor > 1.0


def _smoke() -> int:
    """Tiny-corpus CI gate: never slower, never divergent."""
    from repro.experiments import run_batch_query

    result = run_batch_query(
        db_rows=8_000,
        num_queries=96,
        batch_size=32,
        workers=1,
        alpha=0.8,
        seed=0,
    )
    print(result.render())
    failures = []
    if not result.bit_identical_results:
        failures.append("batched results diverge from the sequential loop")
    if not result.identical_detections:
        failures.append("batched detections diverge from the sequential loop")
    if result.speedup_vs_warm < 1.0:
        failures.append(
            "batched slower than the warm sequential loop "
            f"({result.speedup_vs_warm:.2f}x)"
        )
    if result.speedup_vs_deterministic < 1.0:
        failures.append(
            "batched slower than the deterministic sequential loop "
            f"({result.speedup_vs_deterministic:.2f}x)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        raise SystemExit(_smoke())
    print(__doc__)
    raise SystemExit(2)
