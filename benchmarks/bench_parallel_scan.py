"""Process-parallel scan pool — GIL-escape factor over thread shards.

Acceptance gate for the zero-copy process executor: on a 500k-row corpus
with 4 workers the process pool must be at least 2x faster than the
GIL-bound thread shards, with **zero** fingerprint bytes serialized onto
a pipe (the transport counter asserts the zero-copy contract) and
results bit-identical to the serial engine.  The 2x gate only fires on
hosts with >= 4 cores — on smaller CI containers the run still records
honest numbers (including ``cpu_count``) into
``BENCH_parallel_scan.json`` and enforces the correctness half.

``python benchmarks/bench_parallel_scan.py --smoke`` runs a scaled-down
corpus without pytest-benchmark — the CI gate: every strategy
bit-identical, zero fingerprint bytes on the pipes.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_parallel_scan_speedup(benchmark, capsys):
    from conftest import run_and_report

    from repro.experiments import run_parallel_scan_suite

    result = run_and_report(
        benchmark,
        capsys,
        lambda: run_parallel_scan_suite(
            row_scales=(50_000, 500_000),
            num_queries=256,
            batch_size=64,
            workers=4,
            alpha=0.8,
            seed=0,
            json_path=REPO_ROOT / "BENCH_parallel_scan.json",
        ),
    )
    # Correctness is unconditional: every strategy bit-identical, and
    # the process transport moved no fingerprint bytes over a pipe.
    assert result.bit_identical_results
    for scale in result.scales:
        if scale.processes_available:
            assert scale.fingerprint_bytes_serialized == 0
            assert scale.worker_deaths == 0
    # The >= 2x GIL-escape gate needs actual cores to escape to; a
    # skip is recorded as such in the JSON, never as a silent pass.
    gate = result.gate_status()
    assert gate == "passed" or gate.startswith("skipped"), gate


def _smoke() -> int:
    """Tiny-corpus CI gate: never divergent, never serializing."""
    from repro.experiments import run_parallel_scan_suite

    result = run_parallel_scan_suite(
        row_scales=(8_000,),
        num_queries=64,
        batch_size=32,
        workers=2,
        alpha=0.8,
        seed=0,
        # Force the pool onto every gather so the smoke actually
        # exercises the process path at toy scale.
        parallel_gather_min_rows=1,
    )
    print(result.render())
    failures = []
    gate = result.gate_status()
    if not (gate == "passed" or gate.startswith("skipped")):
        failures.append(f"GIL-escape gate: {gate}")
    if not result.bit_identical_results:
        failures.append(
            "executor strategies diverge from the serial engine"
        )
    for scale in result.scales:
        if not scale.processes_available:
            print(
                "NOTE: process executor unavailable on this host; "
                "smoke covered serial/threads only",
                file=sys.stderr,
            )
            continue
        if scale.fingerprint_bytes_serialized != 0:
            failures.append(
                f"{scale.fingerprint_bytes_serialized} fingerprint bytes "
                "were serialized onto worker pipes (zero-copy contract)"
            )
        if not scale.tasks:
            failures.append("process pool executed no scan tasks")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        raise SystemExit(_smoke())
    print(__doc__)
    raise SystemExit(2)
