"""Fig. 8 — detection-rate abacuses vs transform severity, by DB size.

Paper claim: at fixed alpha = 80%, the database size barely affects the
detection rate (statistical queries guarantee the same expectation at any
size; the voting strategy absorbs the extra false matches), while the
single-fingerprint search time grows sub-linearly.
"""

from conftest import run_and_report

from repro.experiments import run_fig8
from repro.experiments.abacus import build_setup


def test_fig8_dbsize_abacuses(benchmark, capsys):
    setup = build_setup(
        num_videos=10,
        frames_per_video=150,
        num_candidates=6,
        candidate_frames=70,
        seed=0,
    )
    result = run_and_report(
        benchmark,
        capsys,
        lambda: run_fig8(
            db_sizes=(20_000, 80_000, 240_000),
            alpha=0.8,
            setup=setup,
            decision_threshold=8,
        ),
    )
    # Headline flatness claim: rates spread across sizes stays small.
    assert result.max_rate_spread() <= 0.40
    times = list(result.abacus.search_times.values())
    assert times[-1] >= times[0]  # search time grows with DB size
