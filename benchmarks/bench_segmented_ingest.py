"""Segmented live index — online ingestion vs rebuilding the monolith.

Measures what the segmented index buys the paper's deployment loop:
streaming batches into the WAL-backed memtable (with auto-compaction)
must beat rebuilding a monolithic index after every batch, and the
query-side fan-out cost per extra sealed segment must stay modest.
"""

from conftest import run_and_report

from repro.experiments import run_segmented_ingest


def test_segmented_ingest_throughput(benchmark, capsys):
    result = run_and_report(
        benchmark,
        capsys,
        lambda: run_segmented_ingest(
            db_rows=24_000,
            num_batches=16,
            segment_counts=(1, 2, 4, 8),
            num_queries=40,
            seed=0,
        ),
    )
    # Streaming ingestion must beat rebuilding the monolith per batch.
    assert result.speedup > 1.0
    assert result.segmented_rows_per_s > result.rebuild_rows_per_s
    # Compaction bounded the segment count below the batch count.
    assert result.final_segments <= 8
    # Fan-out degrades latency gracefully: 8 segments may not cost more
    # than ~8x one segment (it should be far less in practice).
    one = next(p for p in result.latency if p.num_segments == 1)
    worst = max(p.mean_ms for p in result.latency)
    assert worst < 8 * one.mean_ms
