"""Ablation — pseudo-disk batching: T_tot = T + T_load/N_sig (eq. 5).

Paper claim: batching N_sig queries amortises the section-loading time, so
the per-query cost falls as the batch grows and the loading volume per
query becomes sub-linear in the DB size.

The second test closes the loop with the tiered-storage subsystem: the
same eq.-(5) accounting, scored against *real* bytes fetched from a
blob backend by cold-segment scans (full sweep and JSON record in
``bench_storage_tiers.py``).
"""

from dataclasses import dataclass

import numpy as np
from conftest import run_and_report

from repro.corpus.workload import model_queries
from repro.distortion.model import NormalDistortionModel
from repro.experiments.common import format_table
from repro.experiments.fig56_alpha_sweep import _synthetic_store
from repro.index.pseudodisk import PseudoDiskSearcher
from repro.index.s3 import S3Index


@dataclass
class PseudoDiskAblation:
    rows: list[tuple]

    def render(self) -> str:
        return format_table(
            [
                "N_sig", "per-query total (ms)", "per-query load (MB)",
                "sections loaded",
            ],
            self.rows,
            title="Ablation — pseudo-disk batch size (eq. 5)",
        )


def _run(tmp_dir) -> PseudoDiskAblation:
    rng = np.random.default_rng(0)
    store = _synthetic_store(120_000, rng)
    model = NormalDistortionModel(20, 18.0)
    index = S3Index(store, model=model)
    prefix = tmp_dir / "db"
    index.save(prefix)

    searcher = PseudoDiskSearcher(
        str(prefix) + ".store", model, memory_rows=len(store) // 8,
        depth=index.depth,
    )
    workload = model_queries(index.store, 64, 18.0, rng=rng)
    rows = []
    for n_sig in (1, 4, 16, 64):
        _, stats = searcher.search_batch(workload.queries[:n_sig], 0.8)
        rows.append(
            (
                n_sig,
                stats.seconds_per_query * 1e3,
                stats.bytes_loaded / stats.num_queries / 1e6,
                stats.sections_loaded,
            )
        )
    return PseudoDiskAblation(rows=rows)


def test_batching_amortises_loads(benchmark, capsys, tmp_path):
    result = run_and_report(benchmark, capsys, lambda: _run(tmp_path))
    per_query_mb = [row[2] for row in result.rows]
    # Load volume per query falls monotonically with the batch size.
    assert per_query_mb == sorted(per_query_mb, reverse=True)
    assert per_query_mb[-1] < per_query_mb[0] / 2


def test_tiered_fetch_tracks_model(benchmark, capsys):
    """Real blob-backend fetches land on the eq.-(5) prediction.

    The pseudo-disk above only *models* the loading cost; the tiered
    subsystem pays it against a real backend.  Demote most of a
    segmented archive and require the measured per-query fetch volume
    to track the model within its tolerance, with bit-identical
    results.
    """
    from repro.experiments import run_storage_tiers
    from repro.experiments.storage_tiers import MODEL_TOLERANCE

    result = run_and_report(
        benchmark, capsys,
        lambda: run_storage_tiers(db_rows=24_000, seed=0),
    )
    assert result.bit_identical
    assert result.budget_fraction < 0.25
    assert result.measured_cold_bytes > 0
    assert result.model_error <= MODEL_TOLERANCE
