"""Tiered storage — real cold-fetch bytes vs the eq.-(5) disk model.

Acceptance gate for the tiered-storage subsystem: with the RAM budget
below 25% of the archive (most segments demoted to a real file-backed
blob store), a query batch must return results bit-identical to the
all-RAM run, and the bytes fetched from the backend must land within
20% of the pseudo-disk eq.-(5) prediction computed over pre-demotion
copies of the cold segments.  The run refreshes
``BENCH_storage_tiers.json`` at the repo root — the machine-readable
bytes/latency record later PRs regress against (schema in
``docs/storage-tiers.md``).

``python benchmarks/bench_storage_tiers.py --smoke`` runs a scaled-down
archive without pytest-benchmark — the CI smoke gate: results must not
diverge and the byte gate must hold.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_tiered_bytes_match_model(benchmark, capsys):
    from conftest import run_and_report

    from repro.experiments import run_storage_tiers, write_storage_tiers_json
    from repro.experiments.storage_tiers import MODEL_TOLERANCE

    runs = []

    def _suite():
        runs.append(run_storage_tiers(db_rows=24_000, seed=0))
        runs.append(run_storage_tiers(db_rows=48_000, seed=0))
        write_storage_tiers_json(
            runs, REPO_ROOT / "BENCH_storage_tiers.json"
        )
        return runs[-1]

    run_and_report(benchmark, capsys, _suite)
    for result in runs:
        # Demotion is invisible in the answers.
        assert result.bit_identical
        # The budget really was a small slice of the archive...
        assert result.budget_fraction < 0.25
        assert result.tiers["cold"]["segments"] > 0
        # ...and the backend moved only what eq. (5) says it must.
        assert result.measured_cold_bytes > 0
        assert result.model_error <= MODEL_TOLERANCE


def _smoke() -> int:
    """Tiny-archive CI gate: must stay bit-identical and on-model."""
    from repro.experiments import run_storage_tiers
    from repro.experiments.storage_tiers import MODEL_TOLERANCE

    result = run_storage_tiers(
        db_rows=8_000, num_segments=8, num_queries=16, seed=0
    )
    print(result.render())
    failures = []
    if not result.bit_identical:
        failures.append("tiered results diverge from the all-RAM run")
    if result.budget_fraction >= 0.25:
        failures.append(
            f"budget fraction {result.budget_fraction:.2f} is not < 0.25"
        )
    if result.measured_cold_bytes == 0:
        failures.append("no backend bytes measured: nothing went cold")
    if result.model_error > MODEL_TOLERANCE:
        failures.append(
            f"measured bytes {result.model_error:.1%} from the eq.-(5) "
            f"prediction (tolerance {MODEL_TOLERANCE:.0%})"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--smoke" in argv:
        raise SystemExit(_smoke())
    print(__doc__)
    raise SystemExit(2)
