"""Index tuning — partition depth and the pseudo-disk strategy (§IV-A/B).

Demonstrates the two operational knobs of the S³ index:

* the partition depth ``p`` trades filtering time against refinement time;
  ``tune_depth`` learns the minimum of ``T(p)`` on sample queries, exactly
  as the paper does at the start of the retrieval stage;
* when the database exceeds memory, the pseudo-disk searcher batches
  queries and loads curve sections cyclically; eq. (5)'s amortisation is
  visible directly in the per-query cost.

Run:  python examples/index_tuning.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import NormalDistortionModel, PseudoDiskSearcher, S3Index, tune_depth
from repro.corpus import model_queries
from repro.experiments.fig56_alpha_sweep import _synthetic_store
from repro.index import auto_batch_size, profile_depths


def main() -> None:
    rng = np.random.default_rng(0)
    print("building a 150k-fingerprint store ...")
    store = _synthetic_store(150_000, rng)
    sigma = 18.0
    index = S3Index(store, model=NormalDistortionModel(20, sigma))
    workload = model_queries(store, 20, sigma, rng=rng)

    # --- depth profile -----------------------------------------------------
    print("\nT(p) = T_f(p) + T_r(p) on sample queries:")
    depths = [6, 10, 14, 18, 22, 26]
    for profile in profile_depths(index, workload.queries, 0.8, depths):
        bar = "#" * max(int(profile.total_seconds * 2500), 1)
        print(f"  p={profile.depth:2d}  T_f={profile.filter_seconds * 1e3:6.2f} ms  "
              f"T_r={profile.refine_seconds * 1e3:6.2f} ms  "
              f"rows={profile.rows_scanned:8.0f}  {bar}")
    best, _ = tune_depth(index, workload.queries, 0.8, depths=depths)
    print(f"  learned p_min = {best} (index updated)")
    print("  (at laptop scale the vectorised refinement is so cheap that")
    print("   p_min can sit at the shallow end; the opposing T_f/T_r trends")
    print("   - the paper's sec IV-A - are what the profile shows)")

    # --- pseudo-disk -------------------------------------------------------
    print("\npseudo-disk strategy (memory budget = 1/8 of the store):")
    with tempfile.TemporaryDirectory() as tmp:
        prefix = Path(tmp) / "db"
        index.save(prefix)
        searcher = PseudoDiskSearcher(
            prefix.with_suffix(".store"),
            NormalDistortionModel(20, sigma),
            memory_rows=len(store) // 8,
            depth=index.depth,
        )
        print(f"  curve split into 2^{searcher.r} sections")
        suggested = auto_batch_size(len(store))
        print(f"  suggested N_sig for this store: {suggested}")
        for n_sig in (1, 8, 32):
            _, stats = searcher.search_batch(workload.queries[:n_sig], 0.8)
            print(f"  N_sig={n_sig:3d}: {stats.seconds_per_query * 1e3:7.2f} ms/query, "
                  f"{stats.bytes_loaded / stats.num_queries / 1e6:6.2f} MB loaded/query")
    print("\nloaded volume per query falls with the batch size - the")
    print("T_load/N_sig amortisation of eq. (5). (Wall-clock gains appear")
    print("once sections come from real disk rather than the page cache.)")


if __name__ == "__main__":
    main()
