"""Index diagnostics — occupancy skew and Hilbert clustering in action.

Shows the two empirical properties the S³ design leans on:

* extracted fingerprints are heavily clustered, so the p-block occupancy
  is skewed (high Gini) — which is why the statistical filtering pays off;
* blocks selected together are contiguous on the curve far more often than
  chance, so refinement touches few memory sections.

Run:  python examples/index_diagnostics.py
"""

from repro import NormalDistortionModel, S3Index
from repro.corpus import build_reference_corpus, model_queries, scale_store
from repro.index import clustering_summary, occupancy_summary


def main() -> None:
    print("building a reference index from extracted fingerprints ...")
    corpus = build_reference_corpus(num_videos=8, frames_per_video=120, seed=3)
    store = scale_store(corpus.store, 60_000, rng=3)
    sigma = 18.0
    index = S3Index(store, model=NormalDistortionModel(20, sigma))
    print(f"  {len(index)} fingerprints, keys resolve "
          f"{index.layout.key_bits} bits")

    print("\nblock occupancy by partition depth:")
    print("  depth | populated blocks | occupancy | mean rows | max rows | Gini")
    for depth in (8, 12, 16, 20, 24):
        s = occupancy_summary(index, depth=depth)
        print(f"  p={s.depth:3d} | {s.populated_blocks:16d} | "
              f"{s.occupancy_rate:9.2e} | {s.mean_rows:9.1f} | "
              f"{s.max_rows:8d} | {s.gini:.2f}")
    print("  (tiny occupancy + high Gini = the clustering real descriptors"
          " exhibit)")

    print("\nHilbert clustering on statistical queries (alpha = 80%):")
    workload = model_queries(store, 25, sigma, rng=7)
    for depth in (12, 16, 20):
        s = clustering_summary(index, workload.queries, 0.8, depth=depth)
        print(f"  p={depth:3d}: {s.mean_blocks:6.1f} blocks -> "
              f"{s.mean_sections:6.1f} contiguous sections "
              f"(merge factor {s.merge_factor:.2f})")
    print("  (each section is one sequential scan - the curve keeps the "
          "access pattern compact)")


if __name__ == "__main__":
    main()
