"""Partition visualisation — the paper's Fig. 2 as ASCII art.

Renders the space partition the Hilbert curve induces on a 2-D grid at
several depths, then overlays a statistical query: the blocks selected for
a given expectation α hug the distortion distribution with no shape
constraint, unlike the circle an ε-range query is stuck with.

Run:  python examples/partition_visualization.py
"""

import numpy as np

from repro import HilbertCurve, NormalDistortionModel
from repro.experiments import run_fig2
from repro.experiments.fig2_partition import render_ascii
from repro.hilbert import blocks_at_depth, partition_grid_2d
from repro.index import range_blocks, statistical_blocks


def main() -> None:
    result = run_fig2(order=4, depths=(3, 4, 5))
    for summary in result.summaries:
        print(f"depth p={summary.depth}: {summary.num_blocks} blocks of "
              f"{summary.block_volume} cells "
              f"(shape {summary.distinct_shapes[0][0]}x{summary.distinct_shapes[0][1]})")
    print("\npartition at p=5 (one glyph per block):")
    print(render_ascii(result.grids[5]))

    # --- a statistical query on the 2-D grid -------------------------------
    curve = HilbertCurve(2, 5)  # 32 x 32 grid for a finer picture
    depth = 7
    query = np.array([20.0, 11.0])
    model = NormalDistortionModel(2, sigma=3.5)
    statistical = statistical_blocks(query, model, curve, depth, alpha=0.8)
    chosen = set(statistical.prefixes.tolist())
    epsilon = 3.5 * 1.8  # roughly matched coverage, for the picture
    spherical = set(range_blocks(query, epsilon, curve, depth).prefixes.tolist())

    grid = partition_grid_2d(curve, depth)
    print(f"\nstatistical query alpha=80% at Q=({query[0]:.0f},{query[1]:.0f}) "
          f"on the p={depth} partition")
    print("  '#' = selected by the statistical query, 'o' = intersected by "
          "the eps-sphere only, '.' = untouched\n")
    lines = []
    for y in range(curve.side - 1, -1, -1):
        row = []
        for x in range(curve.side):
            prefix = int(grid[y, x])
            if prefix in chosen:
                row.append("#")
            elif prefix in spherical:
                row.append("o")
            else:
                row.append(".")
        lines.append("".join(row))
    print("\n".join(lines))
    print(f"\nstatistical blocks: {len(chosen)}   "
          f"sphere-intersected blocks: {len(spherical)}")
    print("(in dimension 20 the sphere's count explodes while the "
          "statistical set stays tight - Fig. 6 of the paper)")

    # sanity: every selected block exists in the partition
    all_prefixes = {node.prefix for node in blocks_at_depth(curve, depth)}
    assert chosen <= all_prefixes


if __name__ == "__main__":
    main()
