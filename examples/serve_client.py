"""Detection service walk-through — server, wire client, micro-batching.

Boots the asyncio detection server on a background thread over a live
segmented index, then drives it the way a monitoring fleet would: eight
concurrent clients each streaming statistical queries over their own
connection.  Shows the micro-batcher merging those requests into shared
engine calls, verifies one served result bit-identical to a solo
in-process query, ingests new material over the wire, and reads the
service counters back through ``stats``.

Run:  python examples/serve_client.py
"""

import tempfile
import threading
from pathlib import Path

import numpy as np

from repro import NormalDistortionModel
from repro.corpus import build_reference_corpus, scale_store
from repro.index.segmented import SegmentedS3Index
from repro.serve import ServeClient, ServeConfig, ServerThread

ALPHA = 0.8
NUM_CLIENTS = 8
QUERIES_PER_CLIENT = 6


def main() -> None:
    # --- a live index to serve ------------------------------------------
    print("building a segmented reference index ...")
    corpus = build_reference_corpus(num_videos=6, frames_per_video=100, seed=5)
    store = scale_store(corpus.store, 8_000, rng=5)
    workdir = Path(tempfile.mkdtemp(prefix="repro-serve-"))
    index = SegmentedS3Index.create(
        workdir / "live", ndims=store.ndims,
        model=NormalDistortionModel(store.ndims, 12.0),
    )
    index.add(store.fingerprints, store.ids, store.timecodes)
    index.flush()
    print(f"  serving {len(index)} fingerprints from {index.directory}")

    model = NormalDistortionModel(store.ndims, 12.0)
    rng = np.random.default_rng(11)

    # --- boot the server on a background thread -------------------------
    config = ServeConfig(port=0, alpha=ALPHA, max_batch=32, max_wait_ms=5.0)
    with ServerThread(index, config) as server:
        print(f"server listening on {config.host}:{server.port}")

        # --- concurrent monitoring clients ------------------------------
        # Each thread opens its own connection and sends one query per
        # key-frame; the server merges requests that land inside the
        # 5 ms window into shared engine calls.
        def run_client(i: int) -> None:
            rows = (np.arange(QUERIES_PER_CLIENT) + i * 7) % len(corpus.store)
            queries = np.clip(
                corpus.store.fingerprints[rows].astype(np.float64)
                + model.sample(QUERIES_PER_CLIENT, rng=np.random.default_rng(i)),
                0.0, 255.0,
            )
            with ServeClient(port=server.port) as client:
                for query in queries:
                    (result,) = client.query(query)
                    assert len(result.rows) >= 0

        threads = [
            threading.Thread(target=run_client, args=(i,))
            for i in range(NUM_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        with ServeClient(port=server.port) as client:
            stats = client.stats()
            batcher = stats["batcher"]
            print(f"\n{NUM_CLIENTS} clients x {QUERIES_PER_CLIENT} queries "
                  f"-> {batcher['batches']} engine calls "
                  f"(mean fill {batcher['mean_fill']:.1f} "
                  f"fingerprints/call, shed {batcher['shed']})")
            latency = stats["latency"]
            print(f"request latency: p50 {latency['p50_ms']:.1f} ms, "
                  f"p99 {latency['p99_ms']:.1f} ms")

            # --- served == solo deterministic in-process query ----------
            probe = np.clip(
                corpus.store.fingerprints[0].astype(np.float64)
                + model.sample(1, rng=rng)[0],
                0.0, 255.0,
            )
            (wire,) = client.query(probe, include_fingerprints=True)
            index.reset_threshold_cache()
            solo = index.statistical_query(probe, ALPHA)
            identical = (
                np.array_equal(solo.rows, wire.rows)
                and np.array_equal(solo.fingerprints, wire.fingerprints)
            )
            print(f"served result bit-identical to solo query: {identical}")

            # --- on-the-fly referencing over the wire -------------------
            new = corpus.store.fingerprints[:50].astype(np.float64)
            reply = client.ingest(
                new,
                ids=np.full(50, 999, dtype=np.int64),
                timecodes=np.arange(50, dtype=np.float64),
            )
            print(f"\ningested {reply['added']} rows over the wire "
                  f"({reply['pending_rows']} pending in WAL); "
                  f"searchable from the next batch on")

            health = client.health()
            print(f"health: {health['status']}, index rows "
                  f"{health['index']['rows']}")

    print("\nserver drained and stopped; WAL closed cleanly")


if __name__ == "__main__":
    main()
