"""TV monitoring — continuous stream surveillance (paper §V-D).

Simulates the paper's production deployment: a "TV channel" stream is
assembled from non-referenced material with referenced excerpts spliced in
(one of them gamma-distorted, as off-air captures are), and the detector
monitors it window by window, reporting which archive programme each
detection matches and at which temporal alignment.

Run:  python examples/tv_monitoring.py
"""

import numpy as np

from repro import CopyDetector, DetectorConfig, NormalDistortionModel, S3Index
from repro.cbcd import calibrate_decision_threshold
from repro.corpus import build_reference_corpus, scale_store
from repro.video import Gamma, VideoClip, generate_corpus


def main() -> None:
    print("building reference archive ...")
    corpus = build_reference_corpus(num_videos=10, frames_per_video=160, seed=21)
    store = scale_store(corpus.store, 30_000, rng=21)
    index = S3Index(store, model=NormalDistortionModel(20, 20.0), depth=20)
    detector = CopyDetector(index, DetectorConfig(alpha=0.8))

    negatives = generate_corpus(3, 100, seed=31337)
    threshold = calibrate_decision_threshold(detector, negatives)
    print(f"  archive: {len(store)} fingerprints, threshold n_sim >= {threshold}")

    # --- assemble the broadcast stream -----------------------------------
    print("assembling a simulated broadcast stream ...")
    filler_clips = generate_corpus(3, 80, seed=777)
    excerpt_a, truth_a = corpus.candidate(3, 20, 80)
    excerpt_b, truth_b = corpus.candidate(8, 40, 80)
    excerpt_b = Gamma(1.7).apply_clip(excerpt_b)  # an off-air distortion

    segments = [
        ("filler", filler_clips[0], None),
        ("copy of programme 3", excerpt_a, truth_a),
        ("filler", filler_clips[1], None),
        ("distorted copy of programme 8", excerpt_b, truth_b),
        ("filler", filler_clips[2], None),
    ]
    stream = VideoClip(np.concatenate([seg[1].frames for seg in segments]))
    schedule = []
    cursor = 0
    for label, clip, truth in segments:
        schedule.append((cursor, cursor + clip.num_frames, label, truth))
        cursor += clip.num_frames
    print(f"  stream: {stream.num_frames} frames "
          f"({stream.duration:.0f} s at {stream.frame_rate:.0f} fps)")

    # --- monitor ----------------------------------------------------------
    print("\nmonitoring (80-frame windows):")
    reports = detector.monitor_stream(stream, window_frames=80)
    for start, report in reports:
        expected = next(
            (label for s, e, label, _ in schedule if s <= start < e), "?"
        )
        if report.detections:
            det = report.detections[0]
            print(f"  window @{start:4d}: DETECTED video {det.video_id} "
                  f"(b={det.offset:7.1f}, n_sim={det.nsim:3d})   [{expected}]")
        else:
            print(f"  window @{start:4d}: no detection                    "
                  f"    [{expected}]")

    # --- the stateful monitor: overlapping windows, incremental feed ------
    from repro.cbcd import MonitorConfig, StreamMonitor

    print("\nstateful StreamMonitor (fed in 25-frame chunks, overlapping "
          "windows):")
    monitor = StreamMonitor(
        index,
        MonitorConfig(alpha=0.8, window_frames=80, hop_frames=40,
                      decision_threshold=threshold),
    )
    for start in range(0, stream.num_frames, 25):
        for det in monitor.feed(stream.frames[start:start + 25]):
            print(f"  confirmed at frame {det.first_seen_frame:4d}: "
                  f"video {det.video_id} aligned at stream offset "
                  f"{det.stream_offset:.1f} (n_sim={det.nsim})")


if __name__ == "__main__":
    main()
