"""Live ingestion — the segmented index in the paper's operational loop.

The paper's production system at INA references new broadcast material
every day against a growing archive.  This example runs that loop at
laptop scale with the segmented live index:

1. a segmented index directory is created and seeded with a few
   referenced programmes (durable ``add`` through the write-ahead log);
2. a broadcast stream is monitored with ``ingest_new=True``: material
   that matches nothing in the archive is referenced on the fly;
3. the *same* new material is re-broadcast later in the stream — and now
   it is detected, because the first airing referenced it;
4. the directory is compacted and reopened, demonstrating that the
   sealed segments + WAL survive process restarts.

Run:  python examples/live_ingest.py
"""

import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro import CopyDetector, DetectorConfig, NormalDistortionModel, SegmentedS3Index
from repro.cbcd import MonitorConfig, StreamMonitor, calibrate_decision_threshold
from repro.corpus import build_reference_corpus
from repro.index.segmented import CompactionPolicy
from repro.video import generate_corpus


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="s3-live-"))
    directory = workdir / "live-index"
    try:
        run(directory)
    finally:
        shutil.rmtree(workdir)


def run(directory: Path) -> None:
    print("creating segmented index + seeding the archive ...")
    corpus = build_reference_corpus(num_videos=6, frames_per_video=140,
                                    seed=11)
    index = SegmentedS3Index.create(
        directory,
        ndims=20,
        depth=20,
        model=NormalDistortionModel(20, 20.0),
        flush_rows=4000,
        policy=CompactionPolicy(max_segments=4),
    )
    store = corpus.store
    index.add(store.fingerprints, store.ids, store.timecodes)
    index.flush()
    negatives = generate_corpus(3, 100, seed=31337)
    threshold = calibrate_decision_threshold(
        CopyDetector(index, DetectorConfig(alpha=0.8)), negatives
    )
    print(f"  archive: {len(index)} fingerprints in "
          f"{index.num_segments} segment(s), "
          f"calibrated threshold n_sim >= {threshold}")

    # --- a stream with never-seen material aired twice -------------------
    new_material = generate_corpus(1, 120, seed=4242)[0]
    filler = generate_corpus(2, 80, seed=999)
    stream = np.concatenate([
        filler[0].frames,
        new_material.frames,          # first airing: unreferenced
        filler[1].frames,
        new_material.frames,          # re-broadcast: should now match
    ])
    first_airing = filler[0].frames.shape[0]
    rerun_start = (first_airing + new_material.frames.shape[0]
                   + filler[1].frames.shape[0])
    print(f"\nmonitoring a {stream.shape[0]}-frame stream "
          f"(new material airs at {first_airing} and again at {rerun_start})")

    monitor = StreamMonitor(index, MonitorConfig(
        alpha=0.8, window_frames=80, hop_frames=40,
        decision_threshold=threshold,
        ingest_new=True, ingest_video_id=777, ingest_match_threshold=4,
    ))
    for start in range(0, stream.shape[0], 40):
        for det in monitor.feed(stream[start:start + 40]):
            tag = ("re-broadcast of on-the-fly material"
                   if det.video_id == 777 else "archive copy")
            print(f"  frame {det.first_seen_frame:4d}: video "
                  f"{det.video_id} at offset {det.stream_offset:7.1f} "
                  f"(n_sim={det.nsim:3d})  [{tag}]")
    print(f"  referenced {monitor.ingested_rows} new fingerprints "
          f"on the fly; index now {len(index)} fingerprints, "
          f"{index.num_segments} segments + {index.pending_rows} unsealed")

    # --- compaction + restart --------------------------------------------
    index.flush()
    result = index.compact(force=True)
    if result is not None:
        print(f"\ncompacted {result.merged_segments} segments into "
              f"{result.segment_name} ({result.merged_rows} rows, "
              f"{result.seconds:.2f} s)")
    index.close()

    reopened = SegmentedS3Index.open(directory)
    print(f"reopened: {len(reopened)} fingerprints in "
          f"{reopened.num_segments} segment(s) — nothing lost")
    reopened.close()


if __name__ == "__main__":
    main()
