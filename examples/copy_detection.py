"""Copy detection end-to-end — the paper's §V-C protocol in miniature.

Builds a reference archive from procedural clips, scales the database with
filler fingerprints, calibrates the decision threshold on non-referenced
material, then submits transformed candidate clips and reports detection
rates per transformation.

Run:  python examples/copy_detection.py
"""

from repro import CopyDetector, DetectorConfig, NormalDistortionModel, S3Index
from repro.cbcd import calibrate_decision_threshold, evaluate_candidates
from repro.corpus import build_reference_corpus, scale_store
from repro.video import Contrast, Gamma, GaussianNoise, Resize, VerticalShift, generate_corpus


def main() -> None:
    # --- reference archive ----------------------------------------------
    print("building reference corpus (12 clips) ...")
    corpus = build_reference_corpus(num_videos=12, frames_per_video=150, seed=7)
    store = scale_store(corpus.store, 40_000, rng=7)
    print(f"  database: {len(store)} fingerprints "
          f"({len(corpus.store)} referenced + filler)")

    index = S3Index(store, model=NormalDistortionModel(20, 20.0), depth=20)
    detector = CopyDetector(index, DetectorConfig(alpha=0.8))

    # --- false-alarm calibration ----------------------------------------
    print("calibrating n_sim threshold on non-referenced clips ...")
    negatives = generate_corpus(4, 100, seed=4242)
    threshold = calibrate_decision_threshold(detector, negatives)
    print(f"  decision threshold: n_sim >= {threshold}")

    # --- transformed candidates -----------------------------------------
    candidates = corpus.random_candidates(10, num_frames=80, rng=9)
    transforms = [
        ("none", None),
        ("resize 0.85", Resize(0.85)),
        ("vertical shift 15%", VerticalShift(0.15)),
        ("gamma 1.8", Gamma(1.8)),
        ("contrast 1.8", Contrast(1.8)),
        ("noise 15", GaussianNoise(15.0, seed=99)),
    ]
    print("\ndetection rates over 10 candidate clips:")
    for label, transform in transforms:
        result = evaluate_candidates(detector, candidates, transform=transform)
        print(f"  {label:22s} rate={result.detection_rate:5.0%}   "
              f"mean search {result.mean_search_seconds * 1e3:5.1f} ms/fingerprint")

    # --- inspect one detection ------------------------------------------
    clip, truth = candidates[0]
    report = detector.detect_clip(Gamma(1.8).apply_clip(clip))
    best = report.best()
    if best is not None:
        print(f"\nstrongest detection of candidate 0: video {best.video_id}, "
              f"offset b={best.offset:.1f} frames "
              f"(ground truth {truth.true_offset:.1f}), n_sim={best.nsim}")


if __name__ == "__main__":
    main()
