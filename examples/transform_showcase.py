"""Transform showcase — the paper's Fig. 4, in the terminal.

Renders a frame and its five transformed versions as ASCII luminance maps
and reports each transformation's calibrated severity σ̂ — the quantity
that drives the statistical query's distortion model (Table I).

Run:  python examples/transform_showcase.py
"""

import numpy as np

from repro.fingerprint import calibrate_severity
from repro.video import (
    Contrast,
    Gamma,
    GaussianNoise,
    Resize,
    VerticalShift,
    generate_clip,
)

_GLYPHS = " .:-=+*#%@"


def ascii_frame(frame: np.ndarray, width: int = 44) -> str:
    """Downsample a frame to an ASCII luminance map."""
    h, w = frame.shape
    step = max(w // width, 1)
    rows = []
    for y in range(0, h, 2 * step):
        row = []
        for x in range(0, w, step):
            level = int(frame[y, x]) * (len(_GLYPHS) - 1) // 255
            row.append(_GLYPHS[level])
        rows.append("".join(row))
    return "\n".join(rows)


def main() -> None:
    clip = generate_clip(80, seed=9)
    frame = clip.frames[40]
    transforms = [
        ("original", None, None),
        ("shift w=30%", VerticalShift(0.30), 1.0),
        ("gamma w=0.40", Gamma(0.40), 1.0),
        ("scale w=0.75", Resize(0.75), 1.0),
        ("contrast w=2.5", Contrast(2.5), 1.0),
        ("noise w=30", GaussianNoise(30.0, seed=4), 0.0),
    ]

    calibration_clips = [generate_clip(80, seed=s) for s in (9, 10)]
    for label, transform, delta_pix in transforms:
        print(f"--- {label} " + "-" * max(40 - len(label), 0))
        shown = frame if transform is None else transform.apply_frame(frame)
        print(ascii_frame(shown))
        if transform is not None:
            estimate = calibrate_severity(
                calibration_clips, transform, delta_pix=delta_pix, rng=0
            )
            print(f"    calibrated severity sigma_hat = {estimate.sigma:.1f}")
        print()


if __name__ == "__main__":
    main()
