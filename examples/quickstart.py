"""Quickstart — index fingerprints and run statistical queries.

The 60-second tour of the S³ public API:

1. build a fingerprint database (here: extracted from procedural video);
2. index it along the Hilbert curve with a distortion model;
3. run a statistical query of expectation α and an equal-expectation
   ε-range query, and compare their costs.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    FingerprintExtractor,
    NormalDistortionModel,
    S3Index,
    generate_clip,
    radius_for_expectation,
)
from repro.index import FingerprintStore


def main() -> None:
    # --- 1. a small reference database --------------------------------
    print("extracting fingerprints from two procedural clips ...")
    extractor = FingerprintExtractor()
    stores = []
    for video_id, seed in enumerate((1, 2)):
        clip = generate_clip(150, seed=seed)
        stores.append(extractor.extract(clip, video_id=video_id).store)
    store = FingerprintStore.concatenate(stores)
    print(f"  {len(store)} fingerprints of dimension {store.ndims}")

    # --- 2. the S3 index ----------------------------------------------
    sigma = 20.0  # distortion severity the index should tolerate
    index = S3Index(store, model=NormalDistortionModel(store.ndims, sigma))
    print(f"  indexed at partition depth p={index.depth} "
          f"(keys resolve {index.layout.key_bits} bits)")

    # --- 3. query it ---------------------------------------------------
    rng = np.random.default_rng(0)
    row = int(rng.integers(0, len(store)))
    original = index.store.fingerprints[row]
    query = np.clip(original + rng.normal(0, sigma, store.ndims), 0, 255)

    alpha = 0.8
    result = index.statistical_query(query, alpha)
    found = bool(np.any(np.all(result.fingerprints == original, axis=1)))
    print(f"\nstatistical query (alpha={alpha:.0%}):")
    print(f"  {len(result)} fingerprints returned, "
          f"{result.stats.blocks_selected} blocks, "
          f"{result.stats.total_seconds * 1e3:.2f} ms")
    print(f"  original fingerprint retrieved: {found}")

    epsilon = radius_for_expectation(alpha, store.ndims, sigma)
    result_range = index.range_query(query, epsilon)
    print(f"\nequal-expectation range query (eps={epsilon:.1f}):")
    print(f"  {len(result_range)} fingerprints returned, "
          f"{result_range.stats.blocks_selected} blocks, "
          f"{result_range.stats.total_seconds * 1e3:.2f} ms")
    print("\nthe statistical query needs far fewer blocks for the same "
          "expectation - that is the paper's core result.")


if __name__ == "__main__":
    main()
