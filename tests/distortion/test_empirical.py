"""Tests for the empirical distortion model (§VI extension)."""

import numpy as np
import pytest

from repro.distortion.empirical import EmpiricalDistortionModel
from repro.distortion.model import NormalDistortionModel
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def gaussian_sample():
    rng = np.random.default_rng(0)
    return rng.normal(0.0, np.array([5.0, 12.0, 25.0]), size=(20_000, 3))


class TestConstruction:
    def test_rejects_tiny_samples(self):
        with pytest.raises(ConfigurationError):
            EmpiricalDistortionModel(np.zeros((4, 3)))
        with pytest.raises(ConfigurationError):
            EmpiricalDistortionModel(np.zeros(10))

    def test_rejects_bad_parameters(self, gaussian_sample):
        with pytest.raises(ConfigurationError):
            EmpiricalDistortionModel(gaussian_sample, grid_points=4)
        with pytest.raises(ConfigurationError):
            EmpiricalDistortionModel(gaussian_sample, smoothing=-1.0)


class TestCdf:
    def test_recovers_gaussian_marginals(self, gaussian_sample):
        model = EmpiricalDistortionModel(gaussian_sample)
        reference = NormalDistortionModel(1, 12.0)
        xs = np.linspace(-40, 40, 41)
        emp = model.component_cdf(1, xs)
        exact = reference.component_cdf(0, xs)
        assert np.max(np.abs(emp - exact)) < 0.02

    def test_monotone_and_bounded(self, gaussian_sample):
        model = EmpiricalDistortionModel(gaussian_sample)
        xs = np.linspace(-200, 200, 401)
        for dim in range(3):
            cdf = model.component_cdf(dim, xs)
            assert np.all(np.diff(cdf) >= -1e-12)
            assert cdf[0] < 0.01 and cdf[-1] > 0.99

    def test_extreme_tails(self, gaussian_sample):
        model = EmpiricalDistortionModel(gaussian_sample)
        assert float(model.component_cdf(0, np.array(-1e6))) == pytest.approx(0.0, abs=1e-6)
        assert float(model.component_cdf(0, np.array(1e6))) == pytest.approx(1.0, abs=1e-6)

    def test_captures_heavy_tails(self):
        """A two-component mixture (the real distortion shape): the
        empirical model matches the mixture CDF where a single normal with
        the pooled sigma misses it."""
        rng = np.random.default_rng(1)
        narrow = rng.normal(0, 3.0, (8000, 1))
        wide = rng.normal(0, 30.0, (2000, 1))
        sample = np.concatenate([narrow, wide])
        model = EmpiricalDistortionModel(sample)
        pooled_sigma = sample.std()
        normal = NormalDistortionModel(1, float(pooled_sigma))
        x = np.array(45.0)  # deep in the mixture's wide tail
        true_tail = np.mean(sample[:, 0] <= 45.0)
        assert abs(float(model.component_cdf(0, x)) - true_tail) < 0.01
        assert abs(float(normal.component_cdf(0, x)) - true_tail) > 0.01

    def test_cdf_multi_matches_component(self, gaussian_sample):
        model = EmpiricalDistortionModel(gaussian_sample)
        dims = np.array([0, 2, 1, 0])
        xs = np.array([-3.0, 10.0, 0.0, 7.0])
        multi = model.cdf_multi(dims, xs)
        for i in range(4):
            single = model.component_cdf(int(dims[i]), xs[i : i + 1]).item()
            assert multi[i] == pytest.approx(single)


class TestSampling:
    def test_inverse_cdf_sampling_statistics(self, gaussian_sample):
        model = EmpiricalDistortionModel(gaussian_sample)
        draws = model.sample(20_000, rng=3)
        assert draws.shape == (20_000, 3)
        assert np.allclose(draws.std(axis=0), [5.0, 12.0, 25.0], rtol=0.1)
        assert np.allclose(draws.mean(axis=0), 0.0, atol=1.0)


class TestIndexIntegration:
    def test_usable_in_statistical_query(self):
        from repro.hilbert import HilbertCurve
        from repro.index.filtering import grid_probability, statistical_blocks

        rng = np.random.default_rng(2)
        sample = rng.normal(0, 2.0, (5000, 3))
        model = EmpiricalDistortionModel(sample)
        curve = HilbertCurve(3, 4)
        query = np.array([8.0, 4.0, 11.0])
        sel = statistical_blocks(query, model, curve, 8, 0.8)
        target = 0.8 * grid_probability(query, model, curve)
        assert sel.total_probability >= target - 1e-9
