"""Tests for the radial law of the distortion norm (paper §V-A)."""

import numpy as np
import pytest

from repro.distortion.radial import (
    closed_form_norm_pdf,
    expectation_for_radius,
    norm_cdf,
    norm_pdf,
    radius_for_expectation,
    tabulate_cdf,
    uniform_sphere_pdf,
)
from repro.errors import ConfigurationError


class TestNormLaw:
    @pytest.mark.parametrize("ndims,sigma", [(1, 2.0), (5, 10.0), (20, 18.0)])
    def test_pdf_integrates_to_one(self, ndims, sigma):
        r = np.linspace(0, sigma * (np.sqrt(ndims) + 8), 20_000)
        pdf = norm_pdf(r, ndims, sigma)
        assert np.trapezoid(pdf, r) == pytest.approx(1.0, abs=1e-4)

    @pytest.mark.parametrize("ndims,sigma", [(2, 1.0), (20, 18.0)])
    def test_closed_form_matches_chi(self, ndims, sigma):
        """The paper's explicit formula equals the scipy chi law."""
        r = np.linspace(0.01, sigma * 8, 500)
        assert np.allclose(
            closed_form_norm_pdf(r, ndims, sigma),
            norm_pdf(r, ndims, sigma),
            rtol=1e-10,
        )

    def test_pdf_zero_for_negative_radius(self):
        assert norm_pdf(np.array([-1.0]), 5, 2.0)[0] == 0.0
        assert closed_form_norm_pdf(np.array([-1.0]), 5, 2.0)[0] == 0.0

    def test_cdf_monotone(self):
        r = np.linspace(0, 300, 100)
        cdf = norm_cdf(r, 20, 18.0)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[0] == 0.0
        assert cdf[-1] == pytest.approx(1.0, abs=1e-6)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        sample = np.linalg.norm(rng.normal(0, 18.0, (50_000, 20)), axis=1)
        for r in (80.0, 93.6, 110.0):
            assert float(norm_cdf(np.array(r), 20, 18.0)) == pytest.approx(
                np.mean(sample <= r), abs=0.01
            )


class TestRadiusForExpectation:
    def test_paper_operating_point(self):
        """§V-B pairs alpha = 80% (sigma = 20, D = 20) with eps = 93.6.

        Under the exact chi(20) law, eps(0.80) = 100.07 and eps = 93.6
        corresponds to alpha = 0.654 — the paper's tabulated integration was
        evidently a little coarse.  We pin both numbers of the exact law.
        """
        assert radius_for_expectation(0.8, 20, 20.0) == pytest.approx(
            100.07, abs=0.05
        )
        assert expectation_for_radius(93.6, 20, 20.0) == pytest.approx(
            0.654, abs=0.005
        )

    def test_inverse_consistency(self):
        for alpha in (0.3, 0.5, 0.8, 0.95):
            eps = radius_for_expectation(alpha, 20, 18.0)
            assert expectation_for_radius(eps, 20, 18.0) == pytest.approx(alpha)

    def test_monotone_in_alpha(self):
        radii = [radius_for_expectation(a, 20, 18.0) for a in (0.3, 0.6, 0.9)]
        assert radii == sorted(radii)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            radius_for_expectation(0.0, 20, 18.0)
        with pytest.raises(ConfigurationError):
            radius_for_expectation(1.0, 20, 18.0)


class TestUniformSphere:
    def test_pdf_integrates_to_one(self):
        r = np.linspace(0, 50.0, 10_000)
        pdf = uniform_sphere_pdf(r, 20, 50.0)
        assert np.trapezoid(pdf, r) == pytest.approx(1.0, abs=1e-3)

    def test_mass_concentrates_at_surface(self):
        """The paper's point: in high D the uniform ball law piles up at
        the boundary, unlike the real distortion."""
        radius = 100.0
        inner = float(
            np.trapezoid(
                uniform_sphere_pdf(np.linspace(0, 80, 2000), 20, radius),
                np.linspace(0, 80, 2000),
            )
        )
        assert inner < 0.02  # (80/100)^20 ~ 0.012

    def test_zero_outside_ball(self):
        pdf = uniform_sphere_pdf(np.array([120.0]), 20, 100.0)
        assert pdf[0] == 0.0


class TestTabulation:
    def test_tabulated_cdf_matches_chi(self):
        radii, cdf = tabulate_cdf(20, 18.0, r_max=250.0, num=4096)
        exact = norm_cdf(radii, 20, 18.0)
        assert np.allclose(cdf, exact, atol=2e-3)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            tabulate_cdf(20, 18.0, r_max=0.0)
        with pytest.raises(ConfigurationError):
            tabulate_cdf(20, 18.0, r_max=10.0, num=1)
        with pytest.raises(ConfigurationError):
            tabulate_cdf(0, 18.0, r_max=10.0)
