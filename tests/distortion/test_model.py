"""Tests for the independent-component distortion models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distortion.model import (
    NormalDistortionModel,
    PerComponentNormalModel,
)
from repro.errors import ConfigurationError


class TestNormalModel:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            NormalDistortionModel(0, 1.0)
        with pytest.raises(ConfigurationError):
            NormalDistortionModel(3, 0.0)
        with pytest.raises(ConfigurationError):
            NormalDistortionModel(3, -2.0)

    def test_cdf_symmetry(self):
        model = NormalDistortionModel(4, 10.0)
        x = np.array([-20.0, -5.0, 0.0, 5.0, 20.0])
        cdf = model.cdf(x)
        assert np.allclose(cdf + cdf[::-1], 1.0)
        assert cdf[2] == pytest.approx(0.5)

    def test_sample_statistics(self):
        model = NormalDistortionModel(6, 7.0)
        sample = model.sample(20_000, rng=0)
        assert sample.shape == (20_000, 6)
        assert np.allclose(sample.mean(axis=0), 0.0, atol=0.3)
        assert np.allclose(sample.std(axis=0), 7.0, atol=0.3)

    def test_interval_probability_matches_sampling(self):
        model = NormalDistortionModel(1, 5.0)
        sample = model.sample(100_000, rng=1)[:, 0]
        query = 3.0
        prob = float(
            model.interval_probability(0, np.array(0.0), np.array(10.0), query)
        )
        observed = np.mean((query + sample >= 0.0) & (query + sample < 10.0))
        assert prob == pytest.approx(observed, abs=0.01)

    def test_box_probability_is_product(self):
        model = NormalDistortionModel(3, 4.0)
        lo = np.array([0.0, 10.0, -5.0])
        hi = np.array([8.0, 30.0, 5.0])
        q = np.array([4.0, 20.0, 0.0])
        expected = 1.0
        for j in range(3):
            expected *= float(
                model.interval_probability(j, lo[j], hi[j], q[j])
            )
        assert model.box_probability(lo, hi, q) == pytest.approx(expected)

    def test_whole_space_probability_is_one(self):
        model = NormalDistortionModel(5, 3.0)
        lo = np.full(5, -1e6)
        hi = np.full(5, 1e6)
        assert model.box_probability(lo, hi, np.zeros(5)) == pytest.approx(1.0)

    @given(st.floats(min_value=-100, max_value=100))
    @settings(max_examples=30)
    def test_cdf_multi_ignores_dims(self, x):
        model = NormalDistortionModel(8, 12.0)
        dims = np.array([0, 3, 7])
        xs = np.full(3, x)
        out = model.cdf_multi(dims, xs)
        assert np.allclose(out, out[0])


class TestPerComponentModel:
    def test_rejects_bad_sigmas(self):
        with pytest.raises(ConfigurationError):
            PerComponentNormalModel([1.0, 0.0])
        with pytest.raises(ConfigurationError):
            PerComponentNormalModel([[1.0], [2.0]])
        with pytest.raises(ConfigurationError):
            PerComponentNormalModel([])

    def test_cdf_uses_per_component_sigma(self):
        model = PerComponentNormalModel([1.0, 100.0])
        # At x = 2: almost full mass for sigma=1, near half for sigma=100.
        assert float(model.component_cdf(0, np.array(2.0))) > 0.95
        assert float(model.component_cdf(1, np.array(2.0))) < 0.55

    def test_cdf_multi_matches_component_cdf(self):
        model = PerComponentNormalModel([2.0, 5.0, 9.0])
        dims = np.array([2, 0, 1])
        x = np.array([3.0, -1.0, 4.0])
        out = model.cdf_multi(dims, x)
        for i in range(3):
            assert out[i] == pytest.approx(
                model.component_cdf(int(dims[i]), x[i:i + 1]).item()
            )

    def test_sample_statistics(self):
        sigmas = np.array([1.0, 5.0, 20.0])
        model = PerComponentNormalModel(sigmas)
        sample = model.sample(30_000, rng=2)
        assert np.allclose(sample.std(axis=0), sigmas, rtol=0.05)

    def test_mean_sigma(self):
        model = PerComponentNormalModel([2.0, 4.0, 6.0])
        assert model.mean_sigma() == pytest.approx(4.0)


class TestBaseFallback:
    def test_generic_cdf_multi_loops(self):
        model = PerComponentNormalModel([3.0, 6.0])
        from repro.distortion.model import IndependentDistortionModel

        dims = np.array([0, 1, 0])
        x = np.array([1.0, 2.0, -1.0])
        generic = IndependentDistortionModel.cdf_multi(model, dims, x)
        fast = model.cdf_multi(dims, x)
        assert np.allclose(generic, fast)
