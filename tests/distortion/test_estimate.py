"""Tests for distortion estimation from fingerprint pairs (paper §IV-C)."""

import numpy as np
import pytest

from repro.distortion.estimate import (
    distortion_vectors,
    estimate_distortion,
    severity_order,
)
from repro.errors import ConfigurationError


class TestDistortionVectors:
    def test_signed_difference(self):
        ref = np.array([[10, 200]], dtype=np.uint8)
        dist = np.array([[20, 150]], dtype=np.uint8)
        delta = distortion_vectors(ref, dist)
        assert delta.tolist() == [[-10.0, 50.0]]

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            distortion_vectors(np.zeros((3, 2)), np.zeros((4, 2)))
        with pytest.raises(ConfigurationError):
            distortion_vectors(np.zeros(5), np.zeros(5))


class TestEstimate:
    def test_recovers_known_sigma(self):
        rng = np.random.default_rng(0)
        ref = rng.integers(50, 200, size=(5000, 4)).astype(np.float64)
        sigmas = np.array([2.0, 5.0, 10.0, 20.0])
        dist = ref - rng.normal(0, 1.0, ref.shape) * sigmas
        est = estimate_distortion(ref, dist)
        assert np.allclose(est.sigma_per_component, sigmas, rtol=0.1)
        assert est.sigma == pytest.approx(sigmas.mean(), rel=0.1)

    def test_rms_not_centered(self):
        """σ̂ is the RMS about zero: a systematic bias inflates it."""
        ref = np.full((100, 2), 100.0)
        dist = ref - 5.0  # constant distortion of +5
        est = estimate_distortion(ref, dist)
        assert est.sigma == pytest.approx(5.0)
        assert np.allclose(est.mean_per_component, 5.0)

    def test_models_constructible(self):
        rng = np.random.default_rng(1)
        ref = rng.integers(0, 255, size=(100, 3)).astype(float)
        dist = ref + rng.normal(0, 4.0, ref.shape)
        est = estimate_distortion(ref, dist)
        normal = est.normal_model()
        per_comp = est.per_component_model()
        assert normal.ndims == 3
        assert per_comp.ndims == 3
        assert per_comp.mean_sigma() == pytest.approx(est.sigma)

    def test_degenerate_component_stays_positive(self):
        ref = np.zeros((10, 2))
        dist = np.zeros((10, 2))
        dist[:, 1] = np.arange(10)
        est = estimate_distortion(ref, dist)
        assert est.sigma_per_component[0] > 0  # floored, usable in a model
        est.normal_model()  # must not raise

    def test_needs_two_pairs(self):
        with pytest.raises(ConfigurationError):
            estimate_distortion(np.zeros((1, 2)), np.zeros((1, 2)))


class TestSeverityOrder:
    def test_orders_by_decreasing_sigma(self):
        rng = np.random.default_rng(2)
        estimates = {}
        for name, sigma in [("mild", 2.0), ("severe", 30.0), ("medium", 9.0)]:
            ref = rng.integers(0, 255, size=(500, 3)).astype(float)
            dist = ref + rng.normal(0, sigma, ref.shape)
            estimates[name] = estimate_distortion(ref, dist)
        assert severity_order(estimates) == ["severe", "medium", "mild"]
