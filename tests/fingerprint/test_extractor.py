"""Tests for the end-to-end extraction pipeline and calibration."""

import numpy as np
import pytest

from repro.errors import ExtractionError
from repro.fingerprint.calibration import calibrate_severity, collect_pairs
from repro.fingerprint.descriptor import FINGERPRINT_DIM
from repro.fingerprint.extractor import ExtractorConfig, FingerprintExtractor
from repro.video.synthetic import VideoClip, generate_clip, generate_corpus
from repro.video.transforms import Gamma, GaussianNoise, Identity, Resize


@pytest.fixture(scope="module")
def clip():
    return generate_clip(100, seed=0)


@pytest.fixture(scope="module")
def extraction(clip):
    return FingerprintExtractor().extract(clip, video_id=9, timecode_offset=50.0)


class TestExtraction:
    def test_store_columns_consistent(self, extraction):
        store = extraction.store
        assert store.ndims == FINGERPRINT_DIM
        assert len(store) == extraction.positions.shape[0]
        assert np.all(store.ids == 9)

    def test_timecodes_are_offset_keyframe_indices(self, extraction):
        assert np.array_equal(
            extraction.store.timecodes,
            extraction.positions[:, 0].astype(float) + 50.0,
        )

    def test_positions_within_frame(self, extraction, clip):
        t = extraction.positions[:, 0]
        y = extraction.positions[:, 1]
        x = extraction.positions[:, 2]
        assert np.all((t >= 0) & (t < clip.num_frames))
        assert np.all((y >= 0) & (y < clip.height))
        assert np.all((x >= 0) & (x < clip.width))

    def test_multiple_points_per_keyframe(self, extraction):
        assert len(extraction.store) > extraction.keyframes.size

    def test_deterministic(self, clip):
        a = FingerprintExtractor().extract(clip, video_id=1)
        b = FingerprintExtractor().extract(clip, video_id=1)
        assert np.array_equal(a.store.fingerprints, b.store.fingerprints)

    def test_featureless_clip_raises(self):
        clip = VideoClip(np.full((40, 64, 64), 128, dtype=np.uint8))
        with pytest.raises(ExtractionError):
            FingerprintExtractor().extract(clip, video_id=0)

    def test_max_keyframes_limits_output(self, clip):
        limited = FingerprintExtractor(
            ExtractorConfig(max_keyframes=3)
        ).extract(clip, video_id=0)
        assert limited.keyframes.size <= 3


class TestExtractAt:
    def test_extract_at_matches_pipeline(self, clip, extraction):
        """Describing the detected positions reproduces the stored bytes."""
        ex = FingerprintExtractor()
        fps, kept = ex.extract_at(clip, extraction.positions)
        assert np.all(kept)
        assert np.array_equal(fps, extraction.store.fingerprints)


class TestCalibration:
    @pytest.fixture(scope="class")
    def clips(self):
        return generate_corpus(2, 80, seed=1)

    def test_identity_with_no_jitter_gives_zero_distortion(self, clips):
        est = calibrate_severity(clips, Identity(), delta_pix=0.0, rng=0)
        assert est.sigma < 0.01

    def test_jitter_alone_raises_severity(self, clips):
        no_jitter = calibrate_severity(clips, Identity(), delta_pix=0.0, rng=0)
        jitter = calibrate_severity(clips, Identity(), delta_pix=1.0, rng=0)
        assert jitter.sigma > no_jitter.sigma + 1.0

    def test_severity_grows_with_noise(self, clips):
        mild = calibrate_severity(
            clips, GaussianNoise(3.0, seed=0), delta_pix=0.0, rng=0
        )
        strong = calibrate_severity(
            clips, GaussianNoise(25.0, seed=0), delta_pix=0.0, rng=0
        )
        assert strong.sigma > mild.sigma

    def test_resize_is_most_severe_of_ladder(self, clips):
        """The paper's ordering: strong resize > gamma > light noise."""
        resize = calibrate_severity(clips, Resize(0.8), delta_pix=1.0, rng=0)
        gamma = calibrate_severity(clips, Gamma(2.0), delta_pix=1.0, rng=0)
        noise = calibrate_severity(
            clips, GaussianNoise(10.0, seed=0), delta_pix=0.0, rng=0
        )
        assert resize.sigma > gamma.sigma > noise.sigma

    def test_collect_pairs_aligns_rows(self, clips):
        pairs = collect_pairs(clips, Gamma(1.5), delta_pix=0.0, rng=0)
        assert pairs.reference.shape == pairs.distorted.shape
        assert len(pairs) > 50
