"""Tests for interest-point repeatability measurement."""

import pytest

from repro.errors import ConfigurationError
from repro.fingerprint.repeatability import (
    frame_repeatability,
    measure_repeatability,
)
from repro.video.synthetic import generate_clip
from repro.video.transforms import GaussianNoise, Identity, Resize, VerticalShift


@pytest.fixture(scope="module")
def clip():
    return generate_clip(60, seed=0)


class TestFrameRepeatability:
    def test_identity_is_perfect(self, clip):
        frame = clip.frames[10]
        repeated, detected = frame_repeatability(frame, frame, Identity())
        assert detected > 0
        assert repeated == detected

    def test_rejects_bad_radius(self, clip):
        frame = clip.frames[0]
        with pytest.raises(ConfigurationError):
            frame_repeatability(frame, frame, Identity(), radius=0.0)

    def test_shift_keeps_visible_points(self, clip):
        """Shifted content: mapped points that stay in frame must be
        re-detected (the detector sees the same pixels)."""
        transform = VerticalShift(0.2)
        frame = clip.frames[10]
        repeated, detected = frame_repeatability(
            frame, transform.apply_frame(frame), transform
        )
        assert detected > 0
        assert repeated / detected >= 0.6


class TestMeasureRepeatability:
    def test_mild_beats_severe_noise(self, clip):
        mild = measure_repeatability(clip, GaussianNoise(3.0, seed=1))
        severe = measure_repeatability(clip, GaussianNoise(60.0, seed=2))
        assert mild.repeatability > severe.repeatability

    def test_mild_resize_beats_strong_resize(self, clip):
        near = measure_repeatability(clip, Resize(0.95))
        strong = measure_repeatability(clip, Resize(0.5))
        assert near.repeatability >= strong.repeatability

    def test_counts_reported(self, clip):
        result = measure_repeatability(clip, Identity(), frame_step=20)
        assert result.num_frames == 3
        assert result.num_reference_points > 0
        assert result.repeatability == pytest.approx(1.0)

    def test_rejects_bad_step(self, clip):
        with pytest.raises(ConfigurationError):
            measure_repeatability(clip, Identity(), frame_step=0)
