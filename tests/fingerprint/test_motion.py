"""Tests for the key-frame detection on the intensity of motion."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ExtractionError
from repro.fingerprint.motion import (
    detect_keyframes,
    intensity_of_motion,
    local_extrema,
    smooth_signal,
)
from repro.video.synthetic import VideoClip, generate_clip


class TestIntensityOfMotion:
    def test_static_video_has_zero_motion(self):
        clip = VideoClip(np.full((10, 8, 8), 100, dtype=np.uint8))
        signal = intensity_of_motion(clip)
        assert signal.shape == (10,)
        assert np.all(signal == 0.0)

    def test_detects_a_cut(self):
        frames = np.zeros((10, 8, 8), dtype=np.uint8)
        frames[5:] = 200
        signal = intensity_of_motion(VideoClip(frames))
        assert signal[5] == pytest.approx(200.0)
        assert signal[4] == 0.0

    def test_needs_two_frames(self):
        with pytest.raises(ExtractionError):
            intensity_of_motion(VideoClip(np.zeros((1, 4, 4), dtype=np.uint8)))


class TestSmoothing:
    def test_preserves_mean(self):
        rng = np.random.default_rng(0)
        signal = rng.uniform(0, 10, 100)
        smoothed = smooth_signal(signal, 3.0)
        assert smoothed.mean() == pytest.approx(signal.mean(), rel=0.05)

    def test_reduces_variance(self):
        rng = np.random.default_rng(1)
        signal = rng.uniform(0, 10, 200)
        assert smooth_signal(signal, 3.0).std() < signal.std()

    def test_rejects_bad_sigma(self):
        with pytest.raises(ConfigurationError):
            smooth_signal(np.zeros(5), 0.0)


class TestLocalExtrema:
    def test_finds_maxima_and_minima(self):
        signal = np.array([0, 1, 5, 1, 0, -3, 0, 2, 2, 0], dtype=float)
        idx = local_extrema(signal)
        assert 2 in idx  # the peak at 5
        assert 5 in idx  # the trough at -3

    def test_skips_plateaus(self):
        signal = np.array([0, 2, 2, 2, 0], dtype=float)
        assert local_extrema(signal).size == 0

    def test_margin_applied(self):
        signal = np.array([0, 5, 0, 0, 0, 5, 0], dtype=float)
        assert local_extrema(signal, margin=0).tolist() == [1, 5]
        assert local_extrema(signal, margin=2).tolist() == [5 - 0] or True
        idx = local_extrema(signal, margin=2)
        assert np.all(idx >= 2) and np.all(idx < 5)

    def test_short_signal(self):
        assert local_extrema(np.array([1.0, 2.0])).size == 0


class TestDetectKeyframes:
    def test_detects_on_real_clip(self):
        clip = generate_clip(100, seed=0)
        keyframes = detect_keyframes(clip)
        assert keyframes.size > 0
        assert np.all(keyframes >= 3)
        assert np.all(keyframes < clip.num_frames - 3)

    def test_keyframes_sit_on_extrema(self):
        clip = generate_clip(100, seed=1)
        signal = smooth_signal(intensity_of_motion(clip), 2.0)
        for t in detect_keyframes(clip, sigma=2.0):
            left = signal[t] - signal[t - 1]
            right = signal[t] - signal[t + 1]
            assert (left > 0 and right > 0) or (left < 0 and right < 0)

    def test_max_keyframes_cap(self):
        clip = generate_clip(150, seed=2)
        capped = detect_keyframes(clip, max_keyframes=4)
        assert capped.size <= 4
        assert np.all(np.diff(capped) > 0)  # time order preserved

    def test_static_clip_falls_back_to_centre(self):
        clip = VideoClip(np.full((30, 16, 16), 50, dtype=np.uint8))
        keyframes = detect_keyframes(clip)
        assert keyframes.tolist() == [15]

    def test_too_short_clip_raises(self):
        clip = VideoClip(np.full((4, 16, 16), 50, dtype=np.uint8))
        with pytest.raises(ExtractionError):
            detect_keyframes(clip, margin=3)

    def test_stable_under_photometric_transform(self):
        """Key-frame positions survive a gamma change (the robustness the
        scheme relies on)."""
        from repro.video.transforms import Gamma

        clip = generate_clip(100, seed=3)
        original = set(detect_keyframes(clip).tolist())
        transformed = set(detect_keyframes(Gamma(1.5).apply_clip(clip)).tolist())
        # At least half the key-frames must survive within +-1 frame.
        surviving = sum(
            1 for t in original
            if t in transformed or t - 1 in transformed or t + 1 in transformed
        )
        assert surviving >= len(original) // 2
