"""Tests for the 20-byte differential descriptor."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fingerprint.descriptor import (
    FINGERPRINT_DIM,
    DescriptorConfig,
    DescriptorExtractor,
    dequantize,
    derivative_stack,
    quantize,
)
from repro.video.synthetic import generate_clip


class TestQuantization:
    def test_roundtrip_error_bounded(self):
        values = np.linspace(-1, 1, 101)
        recovered = dequantize(quantize(values))
        assert np.max(np.abs(recovered - values)) <= 1.0 / 255.0 + 1e-9

    def test_extremes(self):
        assert quantize(np.array([-1.0]))[0] == 0
        assert quantize(np.array([1.0]))[0] == 255
        assert quantize(np.array([0.0]))[0] in (127, 128)

    def test_clips_out_of_range(self):
        assert quantize(np.array([-2.0]))[0] == 0
        assert quantize(np.array([2.0]))[0] == 255


class TestDerivativeStack:
    def test_shape_and_order(self):
        frame = np.zeros((32, 40), dtype=np.uint8)
        stack = derivative_stack(frame, 2.0)
        assert stack.shape == (5, 32, 40)

    def test_horizontal_ramp_activates_ix_only(self):
        ramp = np.tile(np.arange(64, dtype=np.float64) * 2, (64, 1))
        stack = derivative_stack(ramp, 2.0)
        centre = (32, 32)
        ix, iy, ixy, ixx, iyy = (stack[k][centre] for k in range(5))
        assert abs(ix) > 1.0
        assert abs(iy) < 1e-6
        assert abs(ixx) < 0.05  # only boundary leakage of the finite ramp

    def test_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            derivative_stack(np.zeros(10), 2.0)


class TestConfig:
    def test_four_positions_two_per_temporal_side(self):
        cfg = DescriptorConfig()
        positions = cfg.positions()
        assert len(positions) == 4
        before = [p for p in positions if p[0] < 0]
        after = [p for p in positions if p[0] > 0]
        assert len(before) == 2 and len(after) == 2

    def test_margin_covers_offsets(self):
        cfg = DescriptorConfig(spatial_offset=4, derivative_sigma=3.0)
        assert cfg.margin >= 4 + 9

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            DescriptorConfig(spatial_offset=0)
        with pytest.raises(ConfigurationError):
            DescriptorConfig(temporal_offset=-1)
        with pytest.raises(ConfigurationError):
            DescriptorConfig(derivative_sigma=0.0)


class TestExtractor:
    @pytest.fixture(scope="class")
    def clip(self):
        return generate_clip(40, seed=0)

    def test_descriptor_shape_and_dtype(self, clip):
        ex = DescriptorExtractor(clip)
        t = 10
        y = x = 30
        fp = ex.describe(t, y, x)
        assert fp.shape == (FINGERPRINT_DIM,)
        assert fp.dtype == np.uint8

    def test_subvectors_unit_norm(self, clip):
        """Each 5-D sub-fingerprint is L2-normalised before quantisation."""
        ex = DescriptorExtractor(clip)
        fp = dequantize(ex.describe(10, 30, 30))
        for i in range(4):
            sub = fp[5 * i:5 * i + 5]
            norm = np.linalg.norm(sub)
            # Quantisation noise allows ~0.02 deviation; zero vectors allowed.
            assert norm == pytest.approx(1.0, abs=0.05) or norm < 0.05

    def test_deterministic(self, clip):
        a = DescriptorExtractor(clip).describe(10, 30, 30)
        b = DescriptorExtractor(clip).describe(10, 30, 30)
        assert np.array_equal(a, b)

    def test_valid_position_boundaries(self, clip):
        ex = DescriptorExtractor(clip)
        m = ex.config.margin
        dt = ex.config.temporal_offset
        assert ex.valid_position(dt, m, m)
        assert not ex.valid_position(dt - 1, m, m)
        assert not ex.valid_position(dt, m - 1, m)
        assert not ex.valid_position(clip.num_frames - dt, m, m)
        assert not ex.valid_position(dt, clip.height - m, m)

    def test_describe_many_drops_invalid(self, clip):
        ex = DescriptorExtractor(clip)
        m = ex.config.margin
        positions = np.array(
            [[10, m + 2, m + 2], [0, 1, 1], [12, m + 5, m + 7]]
        )
        fps, kept = ex.describe_many(positions)
        assert kept.tolist() == [True, False, True]
        assert fps.shape == (2, FINGERPRINT_DIM)

    def test_describe_many_rejects_bad_shape(self, clip):
        ex = DescriptorExtractor(clip)
        with pytest.raises(ConfigurationError):
            ex.describe_many(np.zeros((3, 2)))

    def test_cache_reused_across_points(self, clip):
        ex = DescriptorExtractor(clip)
        ex.describe(10, 30, 30)
        cached = set(ex._cache)
        ex.describe(10, 32, 28)  # same key-frame: no new stacks
        assert set(ex._cache) == cached

    def test_illumination_offset_invariance(self):
        """Adding a constant to the image leaves derivatives unchanged."""
        clip = generate_clip(30, seed=5)
        brighter_frames = np.clip(clip.frames.astype(int) + 20, 0, 235)
        # Use a range where no clipping occurs.
        from repro.video.synthetic import VideoClip

        safe = VideoClip(np.clip(clip.frames, 20, 215))
        shifted = VideoClip(np.clip(safe.frames.astype(int) + 20, 0, 255))
        a = DescriptorExtractor(safe).describe(10, 30, 40)
        b = DescriptorExtractor(shifted).describe(10, 30, 40)
        assert np.max(np.abs(a.astype(int) - b.astype(int))) <= 2
