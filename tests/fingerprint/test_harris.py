"""Tests for the Harris interest point detector."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fingerprint.harris import (
    HarrisConfig,
    detect_interest_points,
    harris_response,
)


def checkerboard(size=64, square=8):
    tile = np.kron(
        [[1, 0] * 4, [0, 1] * 4] * 4, np.ones((square, square))
    )[:size, :size]
    return (tile * 200).astype(np.uint8)


class TestResponse:
    def test_flat_image_has_no_response(self):
        frame = np.full((32, 32), 90, dtype=np.uint8)
        response = harris_response(frame)
        assert np.allclose(response, 0.0, atol=1e-6)

    def test_corner_scores_higher_than_edge(self):
        frame = np.zeros((48, 48), dtype=np.uint8)
        frame[:24, :24] = 200  # one corner at (24, 24), edges along rows/cols
        cfg = HarrisConfig(sigma_d=1.0, sigma_i=2.0)
        response = harris_response(frame, cfg)
        corner = response[24, 24]
        edge = response[24, 40]
        assert corner > edge

    def test_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            harris_response(np.zeros((3, 4, 5)))


class TestDetection:
    def test_finds_checkerboard_corners(self):
        frame = checkerboard()
        points = detect_interest_points(
            frame, HarrisConfig(border=6, max_points=30)
        )
        assert points.shape[0] > 4
        # Checkerboard corners lie on the 8-pixel lattice.
        on_lattice = sum(
            1 for y, x in points if (y % 8 <= 1 or y % 8 >= 7) and (x % 8 <= 1 or x % 8 >= 7)
        )
        assert on_lattice >= points.shape[0] // 2

    def test_respects_border(self):
        frame = checkerboard()
        cfg = HarrisConfig(border=12, max_points=50)
        points = detect_interest_points(frame, cfg)
        assert np.all(points >= 12)
        assert np.all(points < 64 - 12)

    def test_respects_max_points(self):
        frame = checkerboard()
        cfg = HarrisConfig(border=6, max_points=5)
        assert detect_interest_points(frame, cfg).shape[0] <= 5

    def test_strongest_first(self):
        frame = checkerboard()
        cfg = HarrisConfig(border=6, max_points=10)
        points = detect_interest_points(frame, cfg)
        response = harris_response(frame, cfg)
        scores = [response[y, x] for y, x in points]
        assert scores == sorted(scores, reverse=True)

    def test_flat_image_yields_nothing(self):
        frame = np.full((40, 40), 123, dtype=np.uint8)
        assert detect_interest_points(frame).shape == (0, 2)

    def test_tiny_frame_yields_nothing(self):
        frame = checkerboard()[:12, :12]
        assert detect_interest_points(frame, HarrisConfig(border=8)).shape == (0, 2)

    def test_repeatable_under_contrast_change(self):
        """Detected positions survive a moderate contrast scaling.

        ``max_points`` is kept above the corner count: on a symmetric
        checkerboard many corners tie in response, so a rank truncation
        would pick an arbitrary subset and mask genuine repeatability.
        """
        frame = checkerboard()
        dimmed = (frame.astype(float) * 0.6).astype(np.uint8)
        cfg = HarrisConfig(border=6, max_points=100)
        a = {tuple(p) for p in detect_interest_points(frame, cfg)}
        b = {tuple(p) for p in detect_interest_points(dimmed, cfg)}
        overlap = len(a & b)
        assert overlap >= len(a) // 2


class TestConfigValidation:
    def test_rejects_bad_sigmas(self):
        with pytest.raises(ConfigurationError):
            HarrisConfig(sigma_d=0.0)
        with pytest.raises(ConfigurationError):
            HarrisConfig(sigma_i=-1.0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            HarrisConfig(relative_threshold=1.0)

    def test_rejects_bad_limits(self):
        with pytest.raises(ConfigurationError):
            HarrisConfig(nms_radius=0)
        with pytest.raises(ConfigurationError):
            HarrisConfig(max_points=0)
