"""System test: the whole pipeline, end to end, one scenario.

Builds an archive from procedural video, persists it, reloads it through
both the in-memory index and the pseudo-disk searcher, runs detection on a
transformed candidate and on foreign material, and cross-checks every path
for consistency.  This is the "does the product actually work" test.
"""

import numpy as np
import pytest

from repro import (
    CopyDetector,
    DetectorConfig,
    NormalDistortionModel,
    PseudoDiskSearcher,
    S3Index,
    SequentialScanIndex,
)
from repro.cbcd import calibrate_decision_threshold, is_good_detection
from repro.corpus import build_reference_corpus, scale_store
from repro.distortion import radius_for_expectation
from repro.index import VAFile
from repro.video import Gamma, generate_corpus


@pytest.fixture(scope="module")
def system(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("system")
    corpus = build_reference_corpus(num_videos=6, frames_per_video=130, seed=77)
    store = scale_store(corpus.store, 20_000, rng=77)
    model = NormalDistortionModel(20, 20.0)
    index = S3Index(store, model=model, depth=20)
    prefix = tmp / "archive"
    index.save(prefix)
    detector = CopyDetector(index, DetectorConfig(alpha=0.8))
    negatives = generate_corpus(3, 90, seed=4040)
    threshold = calibrate_decision_threshold(detector, negatives)
    return {
        "corpus": corpus,
        "index": index,
        "model": model,
        "detector": detector,
        "threshold": threshold,
        "prefix": prefix,
    }


class TestEndToEnd:
    def test_transformed_copy_detected_after_calibration(self, system):
        corpus = system["corpus"]
        detector = system["detector"]
        clip, truth = corpus.candidate(3, 25, 80)
        report = detector.detect_clip(Gamma(1.7).apply_clip(clip))
        assert is_good_detection(report, truth)
        best = report.best()
        assert best.nsim >= system["threshold"]

    def test_foreign_material_rejected(self, system):
        detector = system["detector"]
        foreign = generate_corpus(2, 80, seed=606060)
        for clip in foreign:
            report = detector.detect_clip(clip)
            assert report.detections == []

    def test_reloaded_index_identical(self, system):
        index = system["index"]
        loaded = S3Index.load(system["prefix"])
        query = index.store.fingerprints[100].astype(float)
        a = index.statistical_query(query, 0.8)
        b = loaded.statistical_query(query, 0.8)
        assert np.array_equal(np.sort(a.rows), np.sort(b.rows))

    def test_pseudodisk_matches_memory(self, system):
        index = system["index"]
        searcher = PseudoDiskSearcher(
            str(system["prefix"]) + ".store",
            system["model"],
            memory_rows=len(index) // 4,
            depth=index.depth,
        )
        rng = np.random.default_rng(1)
        queries = np.clip(
            index.store.fingerprints[rng.integers(0, len(index), 5)].astype(float)
            + rng.normal(0, 20, (5, 20)),
            0,
            255,
        )
        results, _ = searcher.search_batch(queries, 0.8)
        index.reset_threshold_cache()
        for q, got in zip(queries, results):
            ref = index.statistical_query(q, 0.8)
            assert sorted(got.rows.tolist()) == sorted(ref.rows.tolist())

    def test_three_exact_range_methods_agree(self, system):
        index = system["index"]
        scan = SequentialScanIndex(index.store)
        vafile = VAFile(index.store, bits=4)
        eps = radius_for_expectation(0.7, 20, 20.0)
        rng = np.random.default_rng(2)
        for _ in range(3):
            q = rng.uniform(0, 255, 20)
            rows_a = sorted(index.range_query(q, eps).rows.tolist())
            rows_b = sorted(scan.range_query(q, eps).rows.tolist())
            rows_c = sorted(vafile.range_query(q, eps).rows.tolist())
            assert rows_a == rows_b == rows_c
