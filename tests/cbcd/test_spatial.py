"""Tests for the spatio-temporal voting extension (paper §VI)."""

import numpy as np
import pytest

from repro.cbcd.spatial import (
    PositionedStore,
    SpatialSearchIndex,
    SpatioTemporalMatch,
    spatio_temporal_vote,
)
from repro.distortion.model import NormalDistortionModel
from repro.errors import ConfigurationError
from repro.index.store import FingerprintStore


def planted_matches(true_id, b, dy, dx, num=12, noise=0.0, rng=None):
    rng = rng or np.random.default_rng(0)
    matches = []
    for tc in np.arange(0, num * 2.0, 2.0):
        cand_pos = rng.uniform(10, 60, 2)
        matches.append(
            SpatioTemporalMatch(
                timecode=float(tc + b),
                position=cand_pos + rng.normal(0, noise, 2),
                ids=np.array([true_id], dtype=np.uint32),
                timecodes=np.array([tc]),
                positions=(cand_pos - np.array([dy, dx]))[None, :],
            )
        )
    return matches


class TestPositionedStore:
    def test_alignment_checked(self):
        store = FingerprintStore(
            np.zeros((4, 20), dtype=np.uint8),
            np.zeros(4, dtype=np.uint32),
            np.zeros(4),
        )
        with pytest.raises(ConfigurationError):
            PositionedStore(store=store, positions=np.zeros((3, 2)))

    def test_take_keeps_rows_aligned(self):
        rng = np.random.default_rng(0)
        store = FingerprintStore(
            rng.integers(0, 256, (10, 20), dtype=np.uint8),
            np.arange(10, dtype=np.uint32),
            np.arange(10, dtype=np.float64),
        )
        ps = PositionedStore(store=store, positions=rng.uniform(0, 50, (10, 2)))
        sub = ps.take(np.array([7, 2]))
        assert np.array_equal(sub.store.ids, [7, 2])
        assert np.array_equal(sub.positions, ps.positions[[7, 2]])


class TestSpatioTemporalVote:
    def test_recovers_planted_transform(self):
        matches = planted_matches(5, b=-30.0, dy=8.0, dx=-3.0)
        votes = spatio_temporal_vote(matches)
        assert votes[0].video_id == 5
        assert votes[0].offset == pytest.approx(-30.0, abs=0.5)
        assert votes[0].translation[0] == pytest.approx(8.0, abs=1.0)
        assert votes[0].translation[1] == pytest.approx(-3.0, abs=1.0)
        assert votes[0].nsim == 12

    def test_spatially_incoherent_matches_score_low(self):
        """Temporally aligned but spatially random matches lose votes —
        the added discriminance of the extension."""
        rng = np.random.default_rng(1)
        matches = []
        for tc in np.arange(0, 24.0, 2.0):
            matches.append(
                SpatioTemporalMatch(
                    timecode=float(tc),
                    position=rng.uniform(10, 60, 2),
                    ids=np.array([9], dtype=np.uint32),
                    timecodes=np.array([tc]),  # perfect temporal coherence
                    positions=rng.uniform(10, 60, (1, 2)),  # random space
                )
            )
        votes = spatio_temporal_vote(matches, spatial_tolerance=3.0)
        assert votes[0].nsim < 6  # far below the 12 temporal votes

    def test_min_matches(self):
        matches = planted_matches(5, b=0.0, dy=0.0, dx=0.0, num=1)
        assert spatio_temporal_vote(matches, min_matches=2) == []

    def test_empty(self):
        assert spatio_temporal_vote([]) == []


class TestSpatialSearchIndex:
    @pytest.fixture(scope="class")
    def spatial_index(self):
        rng = np.random.default_rng(0)
        n = 5000
        fps = rng.integers(0, 256, (n, 20), dtype=np.uint8)
        store = FingerprintStore(
            fingerprints=fps,
            ids=(np.arange(n, dtype=np.uint32) // 250),
            timecodes=rng.uniform(0, 200, n),
        )
        positioned = PositionedStore(
            store=store, positions=rng.uniform(0, 70, (n, 2))
        )
        return (
            SpatialSearchIndex(
                positioned, NormalDistortionModel(20, 12.0), depth=18
            ),
            positioned,
        )

    def test_positions_follow_rows(self, spatial_index):
        index, positioned = spatial_index
        match = index.query(
            positioned.store.fingerprints[3].astype(float),
            timecode=0.0,
            position=np.zeros(2),
            alpha=0.8,
        )
        # Every returned position must be the one stored for its row.
        for row, pos in zip(
            index.index.statistical_query(
                positioned.store.fingerprints[3].astype(float), 0.8
            ).rows,
            match.positions,
        ):
            assert np.array_equal(index.positions[row], pos)

    def test_detect_planted_copy(self, spatial_index):
        index, positioned = spatial_index
        rng = np.random.default_rng(7)
        # Candidate = 15 rows of video id 4 with consistent offsets.
        rows = np.nonzero(index.index.store.ids == 4)[0][:15]
        fps = np.clip(
            index.index.store.fingerprints[rows].astype(float)
            + rng.normal(0, 10, (15, 20)),
            0,
            255,
        )
        tcs = index.index.store.timecodes[rows] - 55.0  # b = -55
        pos = index.positions[rows] + np.array([5.0, -2.0])
        votes = index.detect(fps, tcs, pos, alpha=0.85)
        assert votes[0].video_id == 4
        assert votes[0].offset == pytest.approx(-55.0, abs=1.0)
        assert votes[0].translation[0] == pytest.approx(5.0, abs=1.5)
        assert votes[0].translation[1] == pytest.approx(-2.0, abs=1.5)

    def test_detect_validates_shapes(self, spatial_index):
        index, _ = spatial_index
        with pytest.raises(ConfigurationError):
            index.detect(np.zeros((3, 20)), np.zeros(3), np.zeros((2, 2)))
