"""Tests for the Tukey-biweight robust offset estimation (eq. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cbcd.mestimator import (
    estimate_offset,
    tukey_rho,
    tukey_weight,
)
from repro.errors import ConfigurationError


class TestTukeyRho:
    def test_zero_at_zero(self):
        assert tukey_rho(np.array(0.0), 3.0) == 0.0

    def test_saturates_beyond_c(self):
        c = 4.0
        cap = c * c / 6.0
        assert tukey_rho(np.array(c), c) == pytest.approx(cap)
        assert tukey_rho(np.array(100.0), c) == pytest.approx(cap)

    def test_monotone_inside(self):
        u = np.linspace(0, 4.0, 50)
        rho = tukey_rho(u, 4.0)
        assert np.all(np.diff(rho) >= 0)

    def test_symmetric(self):
        u = np.linspace(-5, 5, 21)
        assert np.allclose(tukey_rho(u, 3.0), tukey_rho(-u, 3.0))

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            tukey_rho(np.array(1.0), 0.0)


class TestTukeyWeight:
    def test_weight_one_at_zero(self):
        assert tukey_weight(np.array(0.0), 3.0) == pytest.approx(1.0)

    def test_zero_beyond_c(self):
        assert tukey_weight(np.array(3.1), 3.0) == 0.0

    def test_decreasing(self):
        u = np.linspace(0, 3.0, 30)
        w = tukey_weight(u, 3.0)
        assert np.all(np.diff(w) <= 1e-12)


class TestEstimateOffset:
    def test_exact_offset_no_outliers(self):
        true_b = -42.0
        ref_tcs = np.array([10.0, 20.0, 30.0, 40.0])
        candidate_tcs = list(ref_tcs + true_b)
        matched = [np.array([t]) for t in ref_tcs]
        est = estimate_offset(candidate_tcs, matched, c=3.0)
        assert est.offset == pytest.approx(true_b, abs=1e-6)
        assert est.cost == pytest.approx(0.0, abs=1e-9)

    def test_robust_to_outlier_matches(self):
        """Matches far from the temporal model must not bias b."""
        rng = np.random.default_rng(0)
        true_b = 13.0
        candidate_tcs = []
        matched = []
        for tc in np.arange(0, 40, 2.0):
            candidate_tcs.append(tc + true_b)
            outliers = rng.uniform(0, 500, size=5)
            matched.append(np.concatenate(([tc], outliers)))
        est = estimate_offset(candidate_tcs, matched, c=3.0)
        assert est.offset == pytest.approx(true_b, abs=0.5)

    def test_robust_to_outlier_candidates(self):
        """Candidates with only wrong matches contribute a bounded cost."""
        true_b = 5.0
        candidate_tcs = [10.0, 12.0, 14.0, 16.0, 999.0]
        matched = [
            np.array([5.0]), np.array([7.0]), np.array([9.0]),
            np.array([11.0]), np.array([42.0]),
        ]
        est = estimate_offset(candidate_tcs, matched, c=3.0)
        assert est.offset == pytest.approx(true_b, abs=0.5)

    def test_noisy_inliers_averaged(self):
        rng = np.random.default_rng(1)
        true_b = -7.0
        tcs = np.arange(0, 60, 3.0)
        candidate_tcs = list(tcs + true_b + rng.normal(0, 0.5, tcs.size))
        matched = [np.array([t]) for t in tcs]
        est = estimate_offset(candidate_tcs, matched, c=4.0)
        assert est.offset == pytest.approx(true_b, abs=0.5)

    def test_single_pair(self):
        est = estimate_offset([10.0], [np.array([4.0])], c=3.0)
        assert est.offset == pytest.approx(6.0)
        assert est.num_candidates == 1

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            estimate_offset([], [], c=3.0)

    def test_rejects_misaligned(self):
        with pytest.raises(ConfigurationError):
            estimate_offset([1.0], [np.array([1.0]), np.array([2.0])])

    @given(st.floats(min_value=-200, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_translation_equivariance(self, true_b):
        tcs = np.arange(0, 30, 2.0)
        candidate_tcs = list(tcs + true_b)
        matched = [np.array([t]) for t in tcs]
        est = estimate_offset(candidate_tcs, matched, c=3.0)
        assert est.offset == pytest.approx(true_b, abs=0.1)

    def test_two_competing_modes_picks_stronger(self):
        b_strong, b_weak = 10.0, 80.0
        candidate_tcs = []
        matched = []
        for tc in np.arange(0, 40, 2.0):  # 20 strong votes
            candidate_tcs.append(tc + b_strong)
            matched.append(np.array([tc]))
        for tc in np.arange(0, 12, 2.0):  # 6 weak votes
            candidate_tcs.append(tc + b_weak)
            matched.append(np.array([tc]))
        est = estimate_offset(candidate_tcs, matched, c=3.0)
        assert est.offset == pytest.approx(b_strong, abs=0.5)
