"""Tests for the voting strategy."""

import numpy as np
import pytest

from repro.cbcd.voting import (
    QueryMatches,
    count_votes,
    group_by_identifier,
    vote,
)
from repro.errors import ConfigurationError


def matches_for(true_id, true_b, num=10, noise_ids=(), rng=None):
    """Build per-query matches consistent with one planted copy."""
    rng = rng or np.random.default_rng(0)
    out = []
    for tc in np.arange(0, num * 2.0, 2.0):
        ids = [true_id]
        tcs = [tc - true_b]
        for nid in noise_ids:
            ids.append(nid)
            tcs.append(float(rng.uniform(0, 500)))
        out.append(
            QueryMatches(
                timecode=float(tc),
                ids=np.array(ids, dtype=np.uint32),
                timecodes=np.array(tcs),
            )
        )
    return out


class TestGrouping:
    def test_groups_by_id(self):
        matches = matches_for(3, 5.0, num=4, noise_ids=(9,))
        grouped = group_by_identifier(matches)
        assert set(grouped) == {3, 9}
        cand_tcs, match_tcs = grouped[3]
        assert len(cand_tcs) == 4
        assert all(arr.size == 1 for arr in match_tcs)

    def test_duplicate_id_matches_collapse_per_query(self):
        matches = [
            QueryMatches(
                timecode=1.0,
                ids=np.array([4, 4, 4], dtype=np.uint32),
                timecodes=np.array([10.0, 11.0, 300.0]),
            )
        ]
        grouped = group_by_identifier(matches)
        cand_tcs, match_tcs = grouped[4]
        assert len(cand_tcs) == 1
        assert match_tcs[0].size == 3

    def test_rejects_misaligned_arrays(self):
        bad = [
            QueryMatches(
                timecode=0.0,
                ids=np.array([1, 2]),
                timecodes=np.array([1.0]),
            )
        ]
        with pytest.raises(ConfigurationError):
            group_by_identifier(bad)


class TestCountVotes:
    def test_counts_consistent_candidates(self):
        candidate_tcs = [10.0, 12.0, 14.0]
        matched = [np.array([5.0]), np.array([7.0]), np.array([99.0])]
        assert count_votes(candidate_tcs, matched, offset=5.0, tolerance=1.0) == 2

    def test_one_vote_per_candidate(self):
        candidate_tcs = [10.0]
        matched = [np.array([5.0, 5.1, 4.9])]  # three agreeing matches
        assert count_votes(candidate_tcs, matched, offset=5.0, tolerance=1.0) == 1

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ConfigurationError):
            count_votes([1.0], [np.array([1.0])], 0.0, -1.0)


class TestVote:
    def test_planted_copy_wins(self):
        matches = matches_for(7, true_b=-20.0, num=12, noise_ids=(1, 2))
        votes = vote(matches, tolerance=2.0)
        assert votes[0].video_id == 7
        assert votes[0].offset == pytest.approx(-20.0, abs=0.5)
        assert votes[0].nsim == 12

    def test_noise_ids_score_low(self):
        matches = matches_for(7, true_b=3.0, num=12, noise_ids=(1,))
        votes = {v.video_id: v for v in vote(matches, tolerance=2.0)}
        assert votes[7].nsim > votes.get(1).nsim if 1 in votes else True

    def test_min_matches_filters_rare_ids(self):
        matches = matches_for(7, true_b=0.0, num=5)
        matches.append(
            QueryMatches(
                timecode=99.0,
                ids=np.array([50], dtype=np.uint32),
                timecodes=np.array([1.0]),
            )
        )
        votes = vote(matches, min_matches=2)
        assert all(v.video_id != 50 for v in votes)

    def test_empty_matches(self):
        assert vote([]) == []

    def test_votes_sorted_by_nsim(self):
        rng = np.random.default_rng(3)
        matches = matches_for(7, true_b=0.0, num=10, noise_ids=(1, 2), rng=rng)
        votes = vote(matches)
        nsims = [v.nsim for v in votes]
        assert nsims == sorted(nsims, reverse=True)


class TestVotingProperties:
    def test_time_translation_equivariance(self):
        """Shifting the whole candidate stream shifts b and nothing else."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(st.floats(min_value=-500, max_value=500))
        @settings(max_examples=15, deadline=None)
        def check(delta):
            base = matches_for(3, true_b=7.0, num=8)
            shifted = [
                QueryMatches(
                    timecode=m.timecode + delta,
                    ids=m.ids,
                    timecodes=m.timecodes,
                )
                for m in base
            ]
            v0 = vote(base)[0]
            v1 = vote(shifted)[0]
            assert v1.nsim == v0.nsim
            assert v1.offset == pytest.approx(v0.offset + delta, abs=0.2)

        check()

    def test_match_order_invariance(self):
        base = matches_for(3, true_b=-4.0, num=10, noise_ids=(1, 2))
        reordered = list(reversed(base))
        a = {v.video_id: (v.nsim, round(v.offset, 3)) for v in vote(base)}
        b = {v.video_id: (v.nsim, round(v.offset, 3)) for v in vote(reordered)}
        assert a == b
