"""Integration tests of the complete copy detector."""

import numpy as np
import pytest

from repro.cbcd.detector import CopyDetector, DetectorConfig
from repro.cbcd.evaluation import (
    GroundTruth,
    calibrate_decision_threshold,
    evaluate_candidates,
    is_good_detection,
)
from repro.corpus.builder import build_reference_corpus
from repro.corpus.filler import scale_store
from repro.distortion.model import NormalDistortionModel
from repro.errors import ConfigurationError
from repro.index.s3 import S3Index
from repro.video.synthetic import generate_corpus
from repro.video.transforms import Gamma


@pytest.fixture(scope="module")
def corpus():
    return build_reference_corpus(num_videos=6, frames_per_video=120, seed=11)


@pytest.fixture(scope="module")
def detector(corpus):
    store = scale_store(corpus.store, 15_000, rng=3)
    index = S3Index(store, model=NormalDistortionModel(20, 20.0), depth=20)
    return CopyDetector(index, DetectorConfig(alpha=0.8, decision_threshold=5))


class TestDetectClip:
    def test_detects_verbatim_copy(self, corpus, detector):
        clip, truth = corpus.candidate(2, 20, 70)
        report = detector.detect_clip(clip)
        assert is_good_detection(report, truth)
        best = report.best()
        assert best is not None
        assert best.video_id == 2
        assert best.offset == pytest.approx(truth.true_offset, abs=2.0)

    def test_detects_transformed_copy(self, corpus, detector):
        clip, truth = corpus.candidate(4, 10, 70)
        transformed = Gamma(1.6).apply_clip(clip)
        report = detector.detect_clip(transformed)
        assert is_good_detection(report, truth)

    def test_true_copies_separate_from_unrelated_clips(self, corpus, detector):
        """The property the n_sim threshold calibration relies on: genuine
        copies score far above the coincidental votes of foreign clips."""
        worst_negative = 0
        for seed in (12345, 54321):
            foreign = generate_corpus(1, 80, seed=seed)[0]
            report = detector.detect_clip(foreign)
            best = max((v.nsim for v in report.votes), default=0)
            worst_negative = max(worst_negative, best)
        best_positive = None
        for vid in (2, 4):
            clip, truth = corpus.candidate(vid, 20, 70)
            report = detector.detect_clip(clip)
            scores = [v.nsim for v in report.votes if v.video_id == vid]
            score = max(scores, default=0)
            best_positive = score if best_positive is None else min(
                best_positive, score
            )
        assert best_positive > 2 * worst_negative

    def test_report_accounting(self, corpus, detector):
        clip, _ = corpus.candidate(0, 0, 60)
        report = detector.detect_clip(clip)
        assert report.num_queries > 0
        assert report.rows_scanned > 0
        assert report.search_seconds > 0


class TestDetectFingerprints:
    def test_matches_detect_clip(self, corpus, detector):
        clip, truth = corpus.candidate(1, 15, 70)
        extraction = corpus.extractor.extract(clip, video_id=0)
        report = detector.detect_fingerprints(
            extraction.store.fingerprints, extraction.store.timecodes
        )
        assert is_good_detection(report, truth)

    def test_rejects_misaligned_inputs(self, detector):
        with pytest.raises(ConfigurationError):
            detector.detect_fingerprints(np.zeros((4, 20)), np.zeros(3))


class TestEvaluation:
    def test_detection_rate_on_identity(self, corpus, detector):
        candidates = corpus.random_candidates(6, 70, rng=5)
        result = evaluate_candidates(detector, candidates)
        assert result.detection_rate >= 0.8
        assert result.num_trials == 6
        assert result.mean_search_seconds > 0

    def test_wrong_offset_is_not_good_detection(self, corpus, detector):
        clip, truth = corpus.candidate(3, 30, 70)
        report = detector.detect_clip(clip)
        shifted_truth = GroundTruth(video_id=3, start_frame=truth.start_frame + 50)
        assert not is_good_detection(report, shifted_truth)

    def test_wrong_id_is_not_good_detection(self, corpus, detector):
        clip, truth = corpus.candidate(3, 30, 70)
        report = detector.detect_clip(clip)
        wrong_truth = GroundTruth(video_id=5, start_frame=truth.start_frame)
        assert not is_good_detection(report, wrong_truth)


class TestCalibration:
    def test_threshold_clears_negatives(self, detector):
        negatives = generate_corpus(3, 70, seed=777)
        threshold = calibrate_decision_threshold(detector, negatives)
        from repro.cbcd.evaluation import false_alarm_nsim_distribution

        scores = false_alarm_nsim_distribution(detector, negatives)
        assert threshold > scores.max()  # deterministic per-clip detection
        assert detector.config.decision_threshold == threshold

    def test_rejects_empty_negatives(self, detector):
        with pytest.raises(ConfigurationError):
            calibrate_decision_threshold(detector, [])


class TestMonitorStream:
    def test_monitoring_finds_copy_window(self, corpus, detector):
        """A stream containing referenced material triggers in the right
        window (the paper's TV monitoring use-case).  The decision
        threshold is raised above the coincidental-vote level, as the
        paper's false-alarm calibration would."""
        foreign = generate_corpus(1, 60, seed=999)[0]
        copy_clip, truth = corpus.candidate(2, 20, 60)
        stream_frames = np.concatenate([foreign.frames, copy_clip.frames])
        from repro.video.synthetic import VideoClip

        calibrated = CopyDetector(
            detector.index,
            DetectorConfig(alpha=0.8, decision_threshold=30),
        )
        stream = VideoClip(stream_frames)
        reports = calibrated.monitor_stream(stream, window_frames=60)
        assert len(reports) == 2
        first_ids = {d.video_id for d in reports[0][1].detections}
        second_ids = {d.video_id for d in reports[1][1].detections}
        assert truth.video_id in second_ids
        assert truth.video_id not in first_ids

    def test_rejects_tiny_window(self, detector, corpus):
        clip, _ = corpus.candidate(0, 0, 60)
        with pytest.raises(ConfigurationError):
            detector.monitor_stream(clip, window_frames=4)


class TestExtractedEvaluation:
    def test_extracted_matches_direct_evaluation(self, corpus, detector):
        from repro.cbcd.evaluation import (
            evaluate_candidates,
            evaluate_extracted,
            extract_candidates,
        )

        candidates = corpus.random_candidates(3, 70, rng=77)
        direct = evaluate_candidates(detector, candidates, transform=None)
        extracted = extract_candidates(candidates, transform=None)
        shared = evaluate_extracted(detector, extracted)
        assert [o.detected for o in direct.outcomes] == [
            o.detected for o in shared.outcomes
        ]

    def test_empty_extraction_counts_as_miss(self, detector):
        from repro.cbcd.evaluation import ExtractedCandidate, evaluate_extracted

        empty = ExtractedCandidate(
            fingerprints=np.empty((0, 20), dtype=np.uint8),
            timecodes=np.empty(0),
            truth=GroundTruth(video_id=0, start_frame=0.0),
        )
        result = evaluate_extracted(detector, [empty])
        assert result.detection_rate == 0.0
