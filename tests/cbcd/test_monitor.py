"""Tests for the stateful stream monitor."""

import numpy as np
import pytest

from repro.cbcd.monitor import MonitorConfig, StreamMonitor
from repro.corpus.builder import build_reference_corpus
from repro.corpus.filler import scale_store
from repro.distortion.model import NormalDistortionModel
from repro.errors import ConfigurationError
from repro.index.s3 import S3Index
from repro.video.synthetic import generate_corpus


@pytest.fixture(scope="module")
def setup():
    corpus = build_reference_corpus(num_videos=5, frames_per_video=140, seed=5)
    store = scale_store(corpus.store, 12_000, rng=5)
    index = S3Index(store, model=NormalDistortionModel(20, 20.0), depth=20)
    return corpus, index


def make_monitor(index, **overrides):
    defaults = dict(
        alpha=0.8, window_frames=60, hop_frames=30,
        buffer_keyframes=64, decision_threshold=12,
    )
    defaults.update(overrides)
    return StreamMonitor(index, MonitorConfig(**defaults))


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            MonitorConfig(alpha=0.0)
        with pytest.raises(ConfigurationError):
            MonitorConfig(window_frames=4)
        with pytest.raises(ConfigurationError):
            MonitorConfig(hop_frames=0)
        with pytest.raises(ConfigurationError):
            MonitorConfig(hop_frames=100, window_frames=80)
        with pytest.raises(ConfigurationError):
            MonitorConfig(buffer_keyframes=1)
        with pytest.raises(ConfigurationError):
            MonitorConfig(ingest_video_id=-1)
        with pytest.raises(ConfigurationError):
            MonitorConfig(ingest_match_threshold=-1)


class TestFeeding:
    def test_rejects_bad_shapes(self, setup):
        _, index = setup
        monitor = make_monitor(index)
        with pytest.raises(ConfigurationError):
            monitor.feed(np.zeros((4, 4), dtype=np.uint8))

    def test_rejects_geometry_change(self, setup):
        corpus, index = setup
        monitor = make_monitor(index)
        monitor.feed(corpus.clips[0].frames[:10])
        with pytest.raises(ConfigurationError):
            monitor.feed(np.zeros((5, 10, 10), dtype=np.uint8))

    def test_frames_seen_accumulates(self, setup):
        corpus, index = setup
        monitor = make_monitor(index)
        monitor.feed(corpus.clips[0].frames[:25])
        monitor.feed(corpus.clips[0].frames[25:40])
        assert monitor.frames_seen == 40

    def test_no_analysis_before_first_window(self, setup):
        corpus, index = setup
        monitor = make_monitor(index, window_frames=60)
        out = monitor.feed(corpus.clips[0].frames[:59])
        assert out == []

    def test_internal_buffer_is_trimmed(self, setup):
        corpus, index = setup
        monitor = make_monitor(index)
        stream = np.concatenate([c.frames for c in corpus.clips[:3]])
        monitor.feed(stream)
        # The retained frame buffer stays bounded by ~window+hop frames.
        assert monitor._frames.shape[0] <= 2 * monitor.config.window_frames


class TestDetection:
    def test_detects_copy_in_stream(self, setup):
        corpus, index = setup
        foreign = generate_corpus(2, 70, seed=909)
        copy_clip, truth = corpus.candidate(2, 30, 90)
        stream = np.concatenate(
            [foreign[0].frames, copy_clip.frames, foreign[1].frames]
        )
        monitor = make_monitor(index)
        detections = monitor.feed(stream)
        ids = {d.video_id for d in detections}
        assert truth.video_id in ids
        hit = next(d for d in detections if d.video_id == truth.video_id)
        # Stream-time alignment: the copy starts at frame 70 of the stream
        # and at frame 30 of programme 2, so tc' = tc - 30 + 70.
        assert hit.stream_offset == pytest.approx(40.0, abs=3.0)

    def test_detection_reported_once(self, setup):
        corpus, index = setup
        copy_clip, truth = corpus.candidate(1, 20, 120)
        monitor = make_monitor(index)
        all_detections = []
        # Feed in dribbles of 16 frames; the copy spans many windows.
        frames = copy_clip.frames
        for start in range(0, frames.shape[0], 16):
            all_detections.extend(monitor.feed(frames[start:start + 16]))
        mine = [d for d in all_detections if d.video_id == truth.video_id]
        assert len(mine) == 1  # de-duplicated across windows

    def test_chunking_invariance(self, setup):
        """Feeding one big chunk or many small ones yields the same
        detections (same ids and offsets)."""
        corpus, index = setup
        foreign = generate_corpus(1, 50, seed=31)
        copy_clip, _ = corpus.candidate(4, 10, 80)
        stream = np.concatenate([foreign[0].frames, copy_clip.frames])

        big = make_monitor(index)
        got_big = big.feed(stream)

        small = make_monitor(index)
        got_small = []
        for start in range(0, stream.shape[0], 7):
            got_small.extend(small.feed(stream[start:start + 7]))

        def key(d):
            return (d.video_id, round(d.stream_offset, 1))

        assert sorted(map(key, got_big)) == sorted(map(key, got_small))

    def test_clean_stream_stays_quiet(self, setup):
        _, index = setup
        foreign = generate_corpus(2, 80, seed=555)
        stream = np.concatenate([c.frames for c in foreign])
        monitor = make_monitor(index, decision_threshold=25)
        assert monitor.feed(stream) == []


class TestOnlineIngestion:
    def make_live_index(self, directory):
        from repro.index.segmented import SegmentedS3Index

        return SegmentedS3Index.create(
            directory, ndims=20, depth=20,
            model=NormalDistortionModel(20, 20.0),
            flush_rows=100_000, auto_compact=False, sync=False,
        )

    def test_ingest_new_requires_mutable_index(self, setup):
        _, index = setup
        with pytest.raises(ConfigurationError, match="ingest_new"):
            StreamMonitor(index, MonitorConfig(ingest_new=True))

    def test_unmatched_material_is_referenced(self, setup, tmp_path):
        corpus, _ = setup
        with self.make_live_index(tmp_path / "live") as index:
            store = corpus.store
            index.add(store.fingerprints, store.ids, store.timecodes)
            before = len(index)
            monitor = make_monitor(index, ingest_new=True,
                                   ingest_video_id=777)
            novel = generate_corpus(1, 160, seed=60_001)[0]
            monitor.feed(novel.frames)
            assert monitor.ingested_rows > 0
            assert len(index) == before + monitor.ingested_rows

    def test_overlapping_windows_ingest_once(self, setup, tmp_path):
        """The ingest horizon stops overlapping analysis windows from
        referencing the same stream time twice."""
        corpus, _ = setup
        with self.make_live_index(tmp_path / "live") as index:
            store = corpus.store
            index.add(store.fingerprints, store.ids, store.timecodes)
            monitor = make_monitor(index, ingest_new=True,
                                   ingest_video_id=777)
            novel = generate_corpus(1, 200, seed=60_002)[0]
            monitor.feed(novel.frames)
            # Several local fingerprints legitimately share a key-frame
            # timecode, but no (fingerprint, timecode) pair may be
            # referenced twice by overlapping windows.
            ingested = [
                (tuple(fp), tc) for fp, vid, tc in (
                    index.record(row) for row in range(len(index))
                ) if vid == 777
            ]
            assert ingested
            assert len(ingested) == len(set(ingested))

    def test_rebroadcast_of_ingested_material_is_detected(
        self, setup, tmp_path
    ):
        corpus, _ = setup
        with self.make_live_index(tmp_path / "live") as index:
            store = corpus.store
            index.add(store.fingerprints, store.ids, store.timecodes)
            monitor = make_monitor(
                index, decision_threshold=20,
                ingest_new=True, ingest_video_id=777,
                ingest_match_threshold=4,
            )
            novel = generate_corpus(1, 120, seed=60_003)[0]
            filler = generate_corpus(2, 80, seed=60_004)
            stream = np.concatenate([
                filler[0].frames, novel.frames,     # first airing
                filler[1].frames, novel.frames,     # re-broadcast
            ])
            detections = monitor.feed(stream)
            assert 777 in {d.video_id for d in detections}

    def test_static_monitor_does_not_ingest(self, setup):
        corpus, index = setup
        monitor = make_monitor(index)  # ingest_new defaults to False
        novel = generate_corpus(1, 120, seed=60_005)[0]
        monitor.feed(novel.frames)
        assert monitor.ingested_rows == 0
