"""Unit tests for the abacus result containers (Figs. 8 & 9)."""

import pytest

from repro.experiments.abacus import AbacusCell, AbacusResult, severity_of
from repro.experiments.fig8_dbsize_abacus import Fig8Result
from repro.experiments.fig9_alpha_abacus import Fig9Result
from repro.video.transforms import Gamma, Identity, Resize


def cell(family, severity, label, rate):
    return AbacusCell(
        family=family,
        severity=severity,
        config_label=label,
        detection_rate=rate,
        mean_search_seconds=0.001,
        num_trials=10,
    )


class TestSeverityOf:
    def test_reads_single_knob(self):
        assert severity_of(Resize(0.8)) == 0.8
        assert severity_of(Gamma(2.5)) == 2.5

    def test_identity_has_zero(self):
        assert severity_of(Identity()) == 0.0


class TestAbacusResult:
    def test_render_groups_by_family(self):
        result = AbacusResult(
            title="T",
            cells=[
                cell("gamma", 1.2, "A", 0.9),
                cell("gamma", 1.8, "A", 0.8),
                cell("scale", 0.9, "A", 0.7),
            ],
            search_times={"A": 0.002},
        )
        text = result.render()
        assert "transform family: gamma" in text
        assert "transform family: scale" in text
        assert "search time" in text


class TestFig8Result:
    def test_max_rate_spread(self):
        abacus = AbacusResult(
            title="t",
            cells=[
                cell("gamma", 1.2, "small", 0.9),
                cell("gamma", 1.2, "large", 0.7),
                cell("gamma", 1.8, "small", 0.5),
                cell("gamma", 1.8, "large", 0.5),
            ],
        )
        result = Fig8Result(alpha=0.8, db_sizes=[10, 20], abacus=abacus)
        assert result.max_rate_spread() == pytest.approx(0.2)

    def test_spread_zero_for_single_config(self):
        abacus = AbacusResult(title="t", cells=[cell("gamma", 1.2, "only", 0.9)])
        result = Fig8Result(alpha=0.8, db_sizes=[10], abacus=abacus)
        assert result.max_rate_spread() == 0.0


class TestFig9Result:
    def test_rate_at_averages_config_cells(self):
        abacus = AbacusResult(
            title="t",
            cells=[
                cell("gamma", 1.2, "alpha=80%", 1.0),
                cell("scale", 0.9, "alpha=80%", 0.5),
                cell("gamma", 1.2, "alpha=50%", 0.2),
            ],
        )
        result = Fig9Result(db_rows=100, alphas=[0.8, 0.5], abacus=abacus)
        assert result.rate_at(0.8) == 0.75
        assert result.rate_at(0.5) == 0.2

    def test_rate_at_unknown_alpha_is_zero(self):
        result = Fig9Result(
            db_rows=100, alphas=[0.8], abacus=AbacusResult(title="t")
        )
        assert result.rate_at(0.9) == 0.0
