"""Tests for the ASCII figure renderer."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.ascii_plot import render_plot
from repro.experiments.common import Series


def series(name, pts):
    s = Series(name)
    for x, y in pts:
        s.add(x, y)
    return s


class TestRenderPlot:
    def test_basic_render_contains_markers_and_legend(self):
        a = series("up", [(0, 0), (1, 1), (2, 2)])
        b = series("down", [(0, 2), (1, 1), (2, 0)])
        text = render_plot([a, b], width=20, height=6, title="T")
        assert text.splitlines()[0] == "T"
        assert "o up" in text and "x down" in text
        assert "o" in text and "x" in text

    def test_extremes_land_on_borders(self):
        s = series("s", [(0, 0), (10, 100)])
        text = render_plot([s], width=20, height=6)
        lines = text.splitlines()
        assert "o" in lines[0]       # max y on the top row
        assert "o" in lines[5]       # min y on the bottom row
        assert "100" in text and "0" in text

    def test_log_axes(self):
        s = series("scaling", [(10, 1), (100, 10), (1000, 100)])
        text = render_plot([s], width=24, height=8, logx=True, logy=True)
        # On log-log axes a power law is a straight line: marker column
        # spacing must be uniform.
        cols = []
        for line in text.splitlines():
            if "|" in line and "o" in line:
                cols.append(line.index("o"))
        assert len(cols) == 3

    def test_log_rejects_nonpositive(self):
        s = series("bad", [(0, 1), (1, 2)])
        with pytest.raises(ConfigurationError):
            render_plot([s], logx=True)
        s2 = series("bad2", [(1, 0), (2, 1)])
        with pytest.raises(ConfigurationError):
            render_plot([s2], logy=True)

    def test_rejects_empty_and_tiny(self):
        with pytest.raises(ConfigurationError):
            render_plot([Series("empty")])
        with pytest.raises(ConfigurationError):
            render_plot([series("s", [(0, 0)])], width=4)

    def test_flat_series_do_not_crash(self):
        s = series("flat", [(0, 5), (1, 5), (2, 5)])
        text = render_plot([s], width=20, height=5)
        assert "o" in text
