"""Smoke and shape tests for the experiment modules (tiny workloads).

Each experiment runs here at a drastically reduced scale: the point is to
verify the plumbing and the *direction* of each claim, not the full paper
sweep (that is what ``benchmarks/`` is for).
"""

import pytest

from repro.experiments import (
    build_setup,
    format_table,
    make_detector,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig56,
    run_fig7,
    run_table1,
    sweep_transforms,
)
from repro.experiments.common import Series


class TestCommon:
    def test_series_accumulates(self):
        s = Series("x")
        s.add(1, 2)
        s.add(3, 4)
        assert len(s) == 2
        assert s.x == [1.0, 3.0]

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 0.001]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text


class TestFig2:
    def test_partitions_verified(self):
        result = run_fig2(order=4, depths=(3, 4, 5))
        for summary in result.summaries:
            assert summary.covers_grid
            assert summary.disjoint
            assert summary.num_blocks == 1 << summary.depth
            assert len(summary.distinct_shapes) == 1
        assert "depth p=3" in result.render()

    def test_block_volume_halves_per_depth(self):
        result = run_fig2(order=4, depths=(3, 4))
        volumes = [s.block_volume for s in result.summaries]
        assert volumes[0] == 2 * volumes[1]


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig1(num_clips=2, frames_per_clip=60, num_bins=12, seed=0)

    def test_normal_model_beats_uniform(self, result):
        """The paper's headline comparison of Fig. 1."""
        assert result.ks_normal < result.ks_uniform

    def test_sigma_positive(self, result):
        assert result.sigma_hat > 1.0

    def test_series_aligned(self, result):
        assert len(result.real) == len(result.normal_model)
        assert len(result.real) == len(result.spherical_uniform)

    def test_render(self, result):
        text = result.render()
        assert "KS" in text and "normal" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(
            alphas=(0.5, 0.8, 0.95),
            num_clips=2,
            frames_per_clip=60,
            db_rows=5_000,
            max_queries=60,
            seed=0,
        )

    def test_retrieval_increases_with_alpha(self, result):
        rates = result.retrieval.y
        assert rates[-1] >= rates[0]

    def test_retrieval_tracks_alpha_loosely(self, result):
        assert result.max_error <= 0.25

    def test_render(self, result):
        assert "alpha" in result.render()


class TestTable1:
    def test_severity_ladder_shape(self):
        from repro.video.transforms import Gamma, GaussianNoise, Resize

        ladder = [
            (Resize(0.84), 1.0),
            (Gamma(2.08), 1.0),
            (GaussianNoise(10.0, seed=7), 0.0),
        ]
        result = run_table1(
            num_clips=2,
            frames_per_clip=60,
            db_rows=5_000,
            max_queries=60,
            transforms=ladder,
            seed=0,
        )
        sigmas = [r.sigma_hat for r in result.rows]
        assert sigmas == sorted(sigmas, reverse=True)
        # Mildest transformation retrieves at least as well as the severest.
        assert result.rows[-1].retrieval >= result.rows[0].retrieval - 0.05
        assert result.reference_sigma == pytest.approx(max(sigmas))


class TestFig56:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig56(
            alphas=(0.5, 0.8),
            db_rows=20_000,
            num_queries=40,
            num_range_queries=10,
            depth=24,
            seed=0,
        )

    def test_statistical_faster_than_range(self, result):
        # The gap widens with alpha (bigger equal-expectation sphere); at
        # this tiny scale only the top alpha shows a solid margin.
        assert result.rows[-1].speedup > 1.0

    def test_retrieval_comparable(self, result):
        for row in result.rows:
            assert abs(row.stat_retrieval - row.range_retrieval) < 0.35

    def test_epsilon_grows_with_alpha(self, result):
        eps = [r.epsilon for r in result.rows]
        assert eps == sorted(eps)


class TestFig7:
    def test_scan_linear_s3_sublinear(self):
        result = run_fig7(
            db_sizes=(5_000, 20_000, 80_000),
            num_queries=20,
            num_scan_queries=4,
            seed=0,
        )
        s3_slope, scan_slope = result.loglog_slopes()
        assert scan_slope > 0.6  # essentially linear
        assert s3_slope < scan_slope
        gains = [r.gain for r in result.rows]
        assert gains[-1] > gains[0]  # gain grows with DB size


class TestAbacusMachinery:
    def test_sweep_produces_cells(self):
        setup = build_setup(
            num_videos=4,
            frames_per_video=80,
            num_candidates=2,
            candidate_frames=60,
            seed=0,
        )
        detector = make_detector(setup, db_rows=8_000, alpha=0.8)
        grids = {
            "gamma": [lambda: __import__("repro.video.transforms", fromlist=["Gamma"]).Gamma(1.3)],
        }
        cells = sweep_transforms(detector, setup.candidates, "test", grids=grids)
        assert len(cells) == 1
        assert 0.0 <= cells[0].detection_rate <= 1.0
        assert cells[0].config_label == "test"


class TestFig10:
    def test_monitoring_run_scores_correctly(self):
        from repro.experiments import run_fig10

        result = run_fig10(
            num_videos=4,
            frames_per_video=130,
            db_rows=10_000,
            num_copies=2,
            decision_threshold=20,
            seed=1,
        )
        assert 0.0 <= result.recall <= 1.0
        assert result.recall >= 0.5
        assert result.stream_seconds > 0
        assert result.realtime_factor > 0
        assert "monitoring" in result.render()


class TestSegmentedIngest:
    def test_small_run_shapes(self):
        from repro.experiments import run_segmented_ingest

        result = run_segmented_ingest(
            db_rows=4_000, num_batches=4, segment_counts=(1, 2),
            num_queries=5, seed=0,
        )
        assert result.total_rows == 4_000
        assert result.segmented_seconds > 0
        assert result.rebuild_seconds > 0
        assert result.final_segments >= 1
        assert [p.num_segments for p in result.latency] == [1, 2]
        assert all(p.mean_ms > 0 for p in result.latency)
        assert result.monolithic_ms > 0
        text = result.render()
        assert "Segmented live ingestion" in text
        assert "Query latency vs segment count" in text


class TestRenderings:
    def test_fig56_render_includes_ascii_figures(self):
        from repro.experiments import run_fig56

        result = run_fig56(
            alphas=(0.5, 0.8), db_rows=5_000, num_queries=10,
            num_range_queries=5, depth=16, seed=0,
        )
        text = result.render()
        assert "Fig. 5 — retrieval rate vs alpha" in text
        assert "Fig. 6 — mean search time" in text
        assert "o statistical query" in text

    def test_fig7_render_includes_loglog_plot(self):
        from repro.experiments import run_fig7

        result = run_fig7(
            db_sizes=(2_000, 8_000), num_queries=5, num_scan_queries=2, seed=0
        )
        text = result.render()
        assert "log-log" in text
        assert "o statistical method" in text
        assert "x sequential scan" in text
