"""Tests for the five paper transformations and point mapping."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.video.synthetic import generate_clip
from repro.video.transforms import (
    Compose,
    Contrast,
    Gamma,
    GaussianNoise,
    Identity,
    Resize,
    VerticalShift,
    jitter_points,
)


@pytest.fixture(scope="module")
def clip():
    return generate_clip(20, seed=0)


class TestIdentity:
    def test_noop(self, clip):
        out = Identity().apply_clip(clip)
        assert np.array_equal(out.frames, clip.frames)

    def test_points_unchanged(self):
        pts = np.array([[3.0, 4.0], [10.0, 2.0]])
        assert np.array_equal(Identity().map_points(pts, (20, 20)), pts)


class TestResize:
    def test_preserves_frame_size(self, clip):
        for w in (0.7, 0.95, 1.3):
            out = Resize(w).apply_clip(clip)
            assert out.frames.shape == clip.frames.shape

    def test_downscale_point_mapping_tracks_content(self, clip):
        """A bright dot placed at a known position must move where
        map_points predicts."""
        frame = np.zeros((72, 88), dtype=np.uint8)
        y, x = 20, 30
        frame[y - 1:y + 2, x - 1:x + 2] = 255
        tr = Resize(0.8)
        out = tr.apply_frame(frame)
        my, mx = tr.map_points(np.array([[y, x]], float), (72, 88))[0]
        peak = np.unravel_index(np.argmax(out), out.shape)
        assert abs(peak[0] - my) <= 2 and abs(peak[1] - mx) <= 2

    def test_upscale_point_mapping_tracks_content(self):
        frame = np.zeros((72, 88), dtype=np.uint8)
        y, x = 40, 50
        frame[y - 1:y + 2, x - 1:x + 2] = 255
        tr = Resize(1.25)
        out = tr.apply_frame(frame)
        my, mx = tr.map_points(np.array([[y, x]], float), (72, 88))[0]
        peak = np.unravel_index(np.argmax(out), out.shape)
        assert abs(peak[0] - my) <= 2 and abs(peak[1] - mx) <= 2

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            Resize(0.0)

    def test_params_and_label(self):
        tr = Resize(0.8)
        assert tr.params() == {"w_scale": 0.8}
        assert "scale" in tr.label()


class TestVerticalShift:
    def test_shifts_content_down(self):
        frame = np.zeros((40, 10), dtype=np.uint8)
        frame[10] = 200
        out = VerticalShift(0.25).apply_frame(frame)  # 10 px down
        assert out[20].max() == 200
        assert out[:10].max() == 0  # black fill

    def test_negative_shift(self):
        frame = np.zeros((40, 10), dtype=np.uint8)
        frame[20] = 200
        out = VerticalShift(-0.25).apply_frame(frame)
        assert out[10].max() == 200

    def test_point_mapping(self):
        tr = VerticalShift(0.1)
        pts = tr.map_points(np.array([[5.0, 7.0]]), (40, 10))
        assert pts[0, 0] == pytest.approx(9.0)
        assert pts[0, 1] == pytest.approx(7.0)

    def test_rejects_full_shift(self):
        with pytest.raises(ConfigurationError):
            VerticalShift(1.0)


class TestPhotometric:
    def test_gamma_brightens_and_darkens(self):
        frame = np.full((8, 8), 128, dtype=np.uint8)
        lighter = Gamma(0.5).apply_frame(frame)
        darker = Gamma(2.0).apply_frame(frame)
        assert lighter.mean() > 128 > darker.mean()

    def test_gamma_keeps_extremes(self):
        frame = np.array([[0, 255]], dtype=np.uint8)
        out = Gamma(2.2).apply_frame(frame)
        assert out[0, 0] == 0 and out[0, 1] == 255

    def test_contrast_scales_and_clips(self):
        frame = np.array([[50, 200]], dtype=np.uint8)
        out = Contrast(2.0).apply_frame(frame)
        assert out[0, 0] == 100
        assert out[0, 1] == 255  # clipped

    def test_noise_statistics(self):
        frame = np.full((64, 64), 128, dtype=np.uint8)
        out = GaussianNoise(10.0, seed=0).apply_frame(frame)
        residual = out.astype(float) - 128.0
        assert 8.0 < residual.std() < 12.0

    def test_noise_zero_is_identity(self):
        frame = np.full((8, 8), 99, dtype=np.uint8)
        out = GaussianNoise(0.0, seed=0).apply_frame(frame)
        assert np.array_equal(out, frame)

    def test_noise_reproducible_by_seed(self, clip):
        a = GaussianNoise(10.0, seed=5).apply_clip(clip)
        b = GaussianNoise(10.0, seed=5).apply_clip(clip)
        assert np.array_equal(a.frames, b.frames)

    def test_photometric_points_identity(self):
        pts = np.array([[1.0, 2.0]])
        for tr in (Gamma(2.0), Contrast(1.5), GaussianNoise(5.0, seed=0)):
            assert np.array_equal(tr.map_points(pts, (10, 10)), pts)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            Gamma(0.0)
        with pytest.raises(ConfigurationError):
            Contrast(-1.0)
        with pytest.raises(ConfigurationError):
            GaussianNoise(-1.0)


class TestCompose:
    def test_applies_in_order(self):
        frame = np.array([[100]], dtype=np.uint8)
        both = Compose([Contrast(2.0), Gamma(2.0)]).apply_frame(frame)
        by_hand = Gamma(2.0).apply_frame(Contrast(2.0).apply_frame(frame))
        assert np.array_equal(both, by_hand)

    def test_maps_points_through_chain(self):
        tr = Compose([VerticalShift(0.1), VerticalShift(0.1)])
        pts = tr.map_points(np.array([[0.0, 0.0]]), (40, 10))
        assert pts[0, 0] == pytest.approx(8.0)

    def test_label_and_params(self):
        tr = Compose([Resize(0.8), Gamma(1.5)])
        assert "scale" in tr.label() and "gamma" in tr.label()
        assert "scale.w_scale" in tr.params()

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            Compose([])


class TestJitter:
    def test_zero_jitter_is_copy(self):
        pts = np.array([[3.0, 4.0]])
        out = jitter_points(pts, 0.0, rng=0)
        assert np.array_equal(out, pts)
        assert out is not pts

    def test_jitter_magnitude(self):
        pts = np.zeros((500, 2))
        out = jitter_points(pts, 1.0, rng=0)
        norms = np.linalg.norm(out, axis=1)
        assert np.all(norms <= np.sqrt(2) + 1e-9)
        assert norms.mean() > 0.5

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            jitter_points(np.zeros((1, 2)), -1.0)


class TestLogoInsertion:
    def test_overlay_painted(self):
        from repro.video.transforms import LogoInsertion

        frame = np.zeros((72, 88), dtype=np.uint8)
        logo = LogoInsertion(y_frac=0.1, x_frac=0.5, h_frac=0.2, w_frac=0.3)
        out = logo.apply_frame(frame)
        y0, x0, y1, x1 = logo._box((72, 88))
        assert out[(y0 + y1) // 2, (x0 + x1) // 2] == 230
        assert out[0, 0] == 0  # outside untouched

    def test_covers_mask(self):
        from repro.video.transforms import LogoInsertion

        logo = LogoInsertion(y_frac=0.0, x_frac=0.0, h_frac=0.5, w_frac=0.5)
        points = np.array([[1.0, 1.0], [60.0, 80.0]])
        mask = logo.covers(points, (72, 88))
        assert mask.tolist() == [True, False]

    def test_points_unmoved(self):
        from repro.video.transforms import LogoInsertion

        pts = np.array([[3.0, 4.0]])
        assert np.array_equal(
            LogoInsertion().map_points(pts, (72, 88)), pts
        )

    def test_rejects_bad_fractions(self):
        from repro.video.transforms import LogoInsertion

        with pytest.raises(ConfigurationError):
            LogoInsertion(y_frac=1.0)
        with pytest.raises(ConfigurationError):
            LogoInsertion(level=300)

    def test_detection_survives_logo(self):
        """The paper's motivating case: local fingerprints outside the
        overlay still identify the copy."""
        from repro.cbcd.detector import CopyDetector, DetectorConfig
        from repro.cbcd.evaluation import is_good_detection
        from repro.corpus.builder import build_reference_corpus
        from repro.distortion.model import NormalDistortionModel
        from repro.index.s3 import S3Index
        from repro.video.transforms import LogoInsertion

        corpus = build_reference_corpus(4, 120, seed=21)
        index = S3Index(
            corpus.store, model=NormalDistortionModel(20, 20.0), depth=20
        )
        detector = CopyDetector(
            index, DetectorConfig(alpha=0.8, decision_threshold=8)
        )
        clip, truth = corpus.candidate(1, 20, 70)
        overlaid = LogoInsertion().apply_clip(clip)
        report = detector.detect_clip(overlaid)
        assert is_good_detection(report, truth)
