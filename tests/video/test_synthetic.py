"""Tests for the procedural video generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.video.synthetic import (
    SceneConfig,
    VideoClip,
    generate_clip,
    generate_corpus,
)


class TestVideoClip:
    def test_coerces_frames(self):
        clip = VideoClip(np.zeros((4, 8, 8), dtype=np.float64))
        assert clip.frames.dtype == np.uint8
        assert clip.num_frames == 4
        assert clip.height == 8
        assert clip.width == 8

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            VideoClip(np.zeros((8, 8)))

    def test_duration(self):
        clip = VideoClip(np.zeros((50, 4, 4), dtype=np.uint8), frame_rate=25.0)
        assert clip.duration == pytest.approx(2.0)

    def test_subclip(self):
        clip = generate_clip(30, seed=0)
        sub = clip.subclip(5, 15)
        assert sub.num_frames == 10
        assert np.array_equal(sub.frames, clip.frames[5:15])

    def test_subclip_bounds_checked(self):
        clip = generate_clip(10, seed=0)
        with pytest.raises(ConfigurationError):
            clip.subclip(5, 12)
        with pytest.raises(ConfigurationError):
            clip.subclip(7, 7)


class TestGeneration:
    def test_deterministic_for_seed(self):
        a = generate_clip(40, seed=7)
        b = generate_clip(40, seed=7)
        assert np.array_equal(a.frames, b.frames)

    def test_different_seeds_differ(self):
        a = generate_clip(40, seed=1)
        b = generate_clip(40, seed=2)
        assert not np.array_equal(a.frames, b.frames)

    def test_respects_config_dimensions(self):
        cfg = SceneConfig(height=48, width=64)
        clip = generate_clip(20, config=cfg, seed=0)
        assert (clip.height, clip.width) == (48, 64)

    def test_has_motion(self):
        """Shot cuts and moving objects must produce frame differences."""
        clip = generate_clip(60, seed=3)
        diffs = np.abs(np.diff(clip.frames.astype(float), axis=0)).mean(axis=(1, 2))
        assert diffs.max() > 1.0

    def test_texture_not_flat(self):
        clip = generate_clip(10, seed=4)
        assert clip.frames[0].std() > 5.0

    def test_rejects_zero_frames(self):
        with pytest.raises(ConfigurationError):
            generate_clip(0)


class TestCorpus:
    def test_corpus_clips_are_independent(self):
        clips = generate_corpus(3, 20, seed=0)
        assert len(clips) == 3
        assert not np.array_equal(clips[0].frames, clips[1].frames)

    def test_corpus_deterministic(self):
        a = generate_corpus(2, 15, seed=5)
        b = generate_corpus(2, 15, seed=5)
        for x, y in zip(a, b):
            assert np.array_equal(x.frames, y.frames)

    def test_rejects_zero_clips(self):
        with pytest.raises(ConfigurationError):
            generate_corpus(0, 10)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        clip = generate_clip(12, seed=6)
        path = tmp_path / "clip.npy"
        clip.save(path)
        loaded = VideoClip.load(path, frame_rate=clip.frame_rate)
        assert np.array_equal(loaded.frames, clip.frames)
        assert loaded.frame_rate == clip.frame_rate
