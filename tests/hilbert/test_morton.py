"""Tests for the Z-order (Morton) comparison curve."""

import numpy as np
import pytest

from repro.distortion.model import NormalDistortionModel
from repro.errors import ConfigurationError, GeometryError
from repro.hilbert.morton import (
    MortonBlockSelector,
    MortonIndex,
    morton_encode_batch,
)
from repro.index.store import FingerprintStore


def morton_scalar(point, order, levels):
    key = 0
    for i in range(order - 1, order - 1 - levels, -1):
        for c in point:
            key = (key << 1) | ((int(c) >> i) & 1)
    return key


class TestEncode:
    @pytest.mark.parametrize("ndims,order,levels", [(2, 4, 4), (3, 5, 3), (20, 8, 2)])
    def test_matches_scalar_interleaving(self, ndims, order, levels):
        rng = np.random.default_rng(0)
        pts = rng.integers(0, 1 << order, size=(200, ndims))
        keys = morton_encode_batch(pts, order, levels)
        expected = np.array(
            [morton_scalar(p, order, levels) for p in pts], dtype=np.uint64
        )
        assert np.array_equal(keys, expected)

    def test_bijective_on_small_grid(self):
        import itertools

        pts = np.array(list(itertools.product(range(8), repeat=2)))
        keys = morton_encode_batch(pts, 3, 3)
        assert len(np.unique(keys)) == 64

    def test_rejects_overflow(self):
        with pytest.raises(GeometryError):
            morton_encode_batch(np.zeros((2, 20), dtype=np.uint8), 8, 4)

    def test_rejects_out_of_grid(self):
        with pytest.raises(GeometryError):
            morton_encode_batch(np.full((1, 2), 300), 8, 2)


class TestSelector:
    def test_blocks_match_bruteforce(self):
        """Prefix grouping of Morton keys equals the selector's boxes."""
        import itertools
        from collections import defaultdict

        ndims, order, depth = 3, 3, 7
        selector = MortonBlockSelector(ndims, order)
        model = NormalDistortionModel(ndims, 1.5)
        query = np.array([3.2, 5.0, 1.7])
        prefixes, probs = selector.statistical_blocks(query, model, depth, 0.01)

        groups = defaultdict(list)
        for pt in itertools.product(range(8), repeat=3):
            key = morton_scalar(pt, order, order)
            groups[key >> (ndims * order - depth)].append(pt)
        expected = {}
        for prefix, cells in groups.items():
            lo = np.min(cells, axis=0).astype(float)
            hi = np.max(cells, axis=0).astype(float) + 1.0
            expected[prefix] = model.box_probability(lo, hi, query)
        wanted = sorted(p for p, v in expected.items() if v > 0.01)
        assert list(prefixes) == wanted
        for p, v in zip(prefixes, probs):
            assert v == pytest.approx(expected[int(p)], abs=1e-12)

    def test_alpha_iteration_meets_target(self):
        selector = MortonBlockSelector(3, 4)
        model = NormalDistortionModel(3, 2.0)
        query = np.array([8.0, 4.0, 11.0])
        prefixes, probs = selector.statistical_blocks_alpha(
            query, model, 9, 0.8
        )
        lo = np.zeros(3)
        hi = np.full(3, 16.0)
        target = 0.8 * model.box_probability(lo, hi, query)
        assert probs.sum() >= target - 1e-12

    def test_validates_inputs(self):
        selector = MortonBlockSelector(3, 4)
        model = NormalDistortionModel(3, 2.0)
        with pytest.raises(ConfigurationError):
            selector.statistical_blocks(np.zeros(2), model, 6, 0.1)
        with pytest.raises(ConfigurationError):
            selector.statistical_blocks(np.zeros(3), model, 6, 0.0)


class TestMortonIndex:
    @pytest.fixture(scope="class")
    def stores(self):
        rng = np.random.default_rng(0)
        centers = rng.integers(40, 216, size=(30, 8))
        assign = rng.integers(0, 30, size=8000)
        pts = np.clip(centers[assign] + rng.normal(0, 9, (8000, 8)), 0, 255)
        return FingerprintStore(
            fingerprints=pts.astype(np.uint8),
            ids=np.zeros(8000, dtype=np.uint32),
            timecodes=np.arange(8000, dtype=np.float64),
        )

    def test_same_expectation_as_hilbert(self, stores):
        """Both orderings retrieve planted originals at >= alpha; the
        difference is cost, not correctness."""
        from repro.index.s3 import S3Index

        model = NormalDistortionModel(8, 9.0)
        morton = MortonIndex(stores, model=model, depth=14)
        hilbert = S3Index(stores, model=model, depth=14)
        rng = np.random.default_rng(1)
        m_hits = h_hits = 0
        trials = 60
        for _ in range(trials):
            row = int(rng.integers(0, len(stores)))
            original = stores.fingerprints[row]
            q = np.clip(original + rng.normal(0, 9.0, 8), 0, 255)
            rows, _, _ = morton.statistical_query(q, 0.8)
            m_hits += bool(
                np.any(np.all(morton.store.fingerprints[rows] == original, axis=1))
            )
            result = hilbert.statistical_query(q, 0.8)
            h_hits += bool(
                np.any(np.all(result.fingerprints == original, axis=1))
            )
        assert m_hits / trials >= 0.7
        assert h_hits / trials >= 0.7

    def test_hilbert_clusters_better(self, stores):
        """The ablation's point: at equal depth, Hilbert selections merge
        into fewer contiguous sections than Morton selections."""
        from repro.index.s3 import S3Index

        model = NormalDistortionModel(8, 9.0)
        depth = 14
        morton = MortonIndex(stores, model=model, depth=depth)
        hilbert = S3Index(stores, model=model, depth=depth)
        rng = np.random.default_rng(2)
        m_sections = h_sections = 0
        for _ in range(20):
            row = int(rng.integers(0, len(stores)))
            q = np.clip(
                stores.fingerprints[row] + rng.normal(0, 9.0, 8), 0, 255
            )
            _, _, sections = morton.statistical_query(q, 0.8)
            m_sections += sections
            selection = hilbert.block_selection(q, 0.8)
            h_sections += len(hilbert.row_ranges(selection))
        assert h_sections < m_sections

    def test_rejects_empty_store(self):
        with pytest.raises(ConfigurationError):
            MortonIndex(FingerprintStore.empty(8))
