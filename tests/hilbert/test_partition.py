"""Exhaustive verification of the p-block partition geometry."""

import itertools
from collections import defaultdict

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.hilbert.butz import HilbertCurve
from repro.hilbert.partition import (
    PartitionNode,
    blocks_at_depth,
    partition_grid_2d,
)


@pytest.mark.parametrize("ndims,order,max_depth", [(2, 4, 8), (3, 3, 9), (4, 2, 8)])
def test_blocks_match_bruteforce_prefix_grouping(ndims, order, max_depth):
    """Every block's box equals the bounding box of its curve interval,
    and the interval fills the box exactly."""
    hc = HilbertCurve(ndims, order)
    cells_by_prefix: dict[int, list] = defaultdict(list)
    for depth in range(max_depth + 1):
        cells_by_prefix.clear()
        shift = hc.total_bits - depth
        for pt in itertools.product(range(hc.side), repeat=ndims):
            cells_by_prefix[hc.encode(pt) >> shift].append(pt)
        for node in blocks_at_depth(hc, depth):
            cells = cells_by_prefix[node.prefix]
            assert len(cells) == node.volume()
            for dim in range(ndims):
                values = [c[dim] for c in cells]
                assert min(values) == node.lo[dim]
                assert max(values) == node.hi[dim] - 1


class TestPartitionInvariants:
    @pytest.mark.parametrize("depth", [1, 3, 5, 7])
    def test_blocks_tile_the_grid(self, depth):
        hc = HilbertCurve(2, 4)
        blocks = blocks_at_depth(hc, depth)
        assert len(blocks) == 1 << depth
        total = sum(node.volume() for node in blocks)
        assert total == hc.side ** 2

    @pytest.mark.parametrize("depth", [2, 4, 6])
    def test_equal_volume_blocks(self, depth):
        """Paper: p-blocks have the same volume and shape."""
        hc = HilbertCurve(3, 3)
        volumes = {n.volume() for n in blocks_at_depth(hc, depth)}
        assert len(volumes) == 1

    @pytest.mark.parametrize("depth", [2, 4, 6])
    def test_equal_shape_up_to_orientation(self, depth):
        hc = HilbertCurve(3, 3)
        shapes = {
            tuple(sorted(h - l for l, h in zip(n.lo, n.hi)))
            for n in blocks_at_depth(hc, depth)
        }
        assert len(shapes) == 1

    def test_prefixes_enumerate_curve_order(self):
        hc = HilbertCurve(2, 4)
        blocks = blocks_at_depth(hc, 5)
        assert [n.prefix for n in blocks] == list(range(32))

    def test_curve_interval_bounds(self):
        hc = HilbertCurve(2, 4)
        node = blocks_at_depth(hc, 3)[5]
        start, stop = node.curve_interval()
        assert stop - start == 1 << (hc.total_bits - 3)
        # All cells of the interval decode inside the box.
        for idx in range(start, stop):
            assert node.contains(hc.decode(idx))


class TestNodeApi:
    def test_root_covers_grid(self):
        hc = HilbertCurve(4, 3)
        root = PartitionNode.root(hc)
        assert root.volume() == hc.side ** 4
        assert root.depth == 0

    def test_cannot_split_single_cell(self):
        hc = HilbertCurve(2, 1)
        node = PartitionNode.root(hc)
        for _ in range(hc.total_bits):
            node = node.children()[0]
        with pytest.raises(GeometryError):
            node.children()

    def test_min_sq_distance(self):
        hc = HilbertCurve(2, 3)
        root = PartitionNode.root(hc)
        child0, child1 = root.children()
        inside = np.array(child0.lo, dtype=float) + 0.5
        assert child0.min_sq_distance(inside) == 0.0
        # A point inside child0 has positive distance to child1 unless on
        # the shared face.
        far = np.array(child1.hi, dtype=float) + 3.0
        assert child0.min_sq_distance(far) > 0

    def test_split_dim_alternates_through_all_dims_each_level(self):
        """One level (D splits) halves every dimension exactly once."""
        hc = HilbertCurve(5, 2)
        node = PartitionNode.root(hc)
        dims = []
        for _ in range(5):
            dim, _ = node.split_info()
            dims.append(dim)
            node = node.children()[0]
        assert sorted(dims) == list(range(5))


class TestGrid2D:
    def test_partition_grid_labels(self):
        hc = HilbertCurve(2, 4)
        grid = partition_grid_2d(hc, 4)
        assert grid.shape == (16, 16)
        assert len(np.unique(grid)) == 16
        counts = np.bincount(grid.ravel())
        assert np.all(counts == 16)

    def test_rejects_non_2d(self):
        hc = HilbertCurve(3, 3)
        with pytest.raises(GeometryError):
            partition_grid_2d(hc, 3)

    def test_rejects_bad_depth(self):
        hc = HilbertCurve(2, 3)
        with pytest.raises(GeometryError):
            blocks_at_depth(hc, -1)
        with pytest.raises(GeometryError):
            blocks_at_depth(hc, 7)
