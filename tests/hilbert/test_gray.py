"""Unit tests for the Gray-code primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hilbert.gray import (
    entry_point,
    gray,
    gray_inverse,
    intra_direction,
    rotate_left,
    rotate_right,
    trailing_set_bits,
    transform,
    transform_inverse,
    update_state,
)


class TestGrayCode:
    def test_first_values(self):
        assert [gray(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_consecutive_codes_differ_in_one_bit(self):
        for i in range(1024):
            diff = gray(i) ^ gray(i + 1)
            assert diff != 0 and diff & (diff - 1) == 0

    def test_flip_position_matches_trailing_set_bits(self):
        for i in range(1024):
            assert gray(i) ^ gray(i + 1) == 1 << trailing_set_bits(i)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_inverse_roundtrip(self, i):
        assert gray_inverse(gray(i)) == i

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_gray_is_injective_locally(self, i):
        assert gray(i) != gray(i + 1)


class TestTrailingSetBits:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 0), (1, 1), (2, 0), (3, 2), (7, 3), (8, 0), (0b1011, 2)],
    )
    def test_known_values(self, value, expected):
        assert trailing_set_bits(value) == expected


class TestRotations:
    @given(
        st.integers(min_value=0, max_value=2**20 - 1),
        st.integers(min_value=0, max_value=40),
    )
    def test_left_right_inverse(self, b, shift):
        width = 20
        assert rotate_left(rotate_right(b, shift, width), shift, width) == b

    def test_rotate_right_known(self):
        assert rotate_right(0b0011, 1, 4) == 0b1001
        assert rotate_right(0b0011, 4, 4) == 0b0011

    @given(
        st.integers(min_value=0, max_value=2**12 - 1),
        st.integers(min_value=0, max_value=24),
    )
    def test_rotation_preserves_popcount(self, b, shift):
        assert bin(rotate_right(b, shift, 12)).count("1") == bin(b).count("1")


class TestEntryDirection:
    def test_entry_point_base_case(self):
        assert entry_point(0) == 0

    def test_entry_points_are_gray_codes_of_even_numbers(self):
        for w in range(1, 64):
            e = entry_point(w)
            assert gray_inverse(e) % 2 == 0

    def test_intra_direction_in_range(self):
        for n in (2, 3, 5, 20):
            for w in range(1 << min(n, 6)):
                assert 0 <= intra_direction(w, n) < n


class TestTransform:
    @given(
        st.integers(min_value=0, max_value=2**10 - 1),
        st.integers(min_value=0, max_value=2**10 - 1),
        st.integers(min_value=0, max_value=9),
    )
    def test_transform_roundtrip(self, e, b, d):
        n = 10
        assert transform(e, d, transform_inverse(e, d, b, n), n) == b
        assert transform_inverse(e, d, transform(e, d, b, n), n) == b

    def test_update_state_stays_in_domain(self):
        n = 5
        e, d = 0, 0
        for w in range(1 << n):
            e, d = update_state(e, d, w, n)
            assert 0 <= e < (1 << n)
            assert 0 <= d < n
