"""Unit/property tests for the scalar Hilbert curve (Butz algorithm)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.hilbert.butz import HilbertCurve


class TestConstruction:
    def test_rejects_bad_dimension(self):
        with pytest.raises(GeometryError):
            HilbertCurve(0, 4)

    def test_rejects_bad_order(self):
        with pytest.raises(GeometryError):
            HilbertCurve(2, 0)

    def test_geometry_attributes(self):
        hc = HilbertCurve(3, 4)
        assert hc.side == 16
        assert hc.total_bits == 12


class TestBijectivity:
    @pytest.mark.parametrize("ndims,order", [(1, 4), (2, 3), (3, 2), (4, 2), (5, 1)])
    def test_decode_enumerates_all_cells(self, ndims, order):
        hc = HilbertCurve(ndims, order)
        total = 1 << hc.total_bits
        cells = {tuple(hc.decode(i)) for i in range(total)}
        assert len(cells) == total

    @pytest.mark.parametrize("ndims,order", [(2, 4), (3, 3)])
    def test_encode_inverts_decode(self, ndims, order):
        hc = HilbertCurve(ndims, order)
        for i in range(1 << hc.total_bits):
            assert hc.encode(hc.decode(i)) == i

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50)
    def test_roundtrip_high_dimension(self, seed):
        hc = HilbertCurve(20, 8)
        rng = np.random.default_rng(seed)
        point = rng.integers(0, 256, size=20).tolist()
        assert hc.decode(hc.encode(point)) == point


class TestAdjacency:
    @pytest.mark.parametrize("ndims,order", [(2, 4), (3, 3), (4, 2), (5, 2)])
    def test_consecutive_indices_are_neighbouring_cells(self, ndims, order):
        hc = HilbertCurve(ndims, order)
        prev = hc.decode(0)
        for i in range(1, 1 << hc.total_bits):
            cur = hc.decode(i)
            diffs = [abs(a - b) for a, b in zip(prev, cur)]
            assert sum(diffs) == 1 and max(diffs) == 1, f"break at index {i}"
            prev = cur

    def test_curve_starts_at_origin(self):
        for ndims in (2, 3, 5):
            hc = HilbertCurve(ndims, 3)
            assert hc.decode(0) == [0] * ndims


class TestValidation:
    def test_encode_rejects_wrong_arity(self):
        hc = HilbertCurve(3, 3)
        with pytest.raises(GeometryError):
            hc.encode([1, 2])

    def test_encode_rejects_out_of_grid(self):
        hc = HilbertCurve(2, 3)
        with pytest.raises(GeometryError):
            hc.encode([8, 0])
        with pytest.raises(GeometryError):
            hc.encode([-1, 0])

    def test_decode_rejects_out_of_range_index(self):
        hc = HilbertCurve(2, 3)
        with pytest.raises(GeometryError):
            hc.decode(1 << 6)
        with pytest.raises(GeometryError):
            hc.decode(-1)


class TestPrefixKey:
    @pytest.mark.parametrize("ndims,order,levels", [(2, 4, 2), (3, 3, 1), (5, 4, 3)])
    def test_prefix_matches_full_encode(self, ndims, order, levels):
        hc = HilbertCurve(ndims, order)
        rng = np.random.default_rng(0)
        for _ in range(100):
            point = rng.integers(0, hc.side, size=ndims).tolist()
            full = hc.encode(point)
            expected = full >> (ndims * (order - levels))
            assert hc.prefix_key(point, levels) == expected

    def test_prefix_rejects_bad_levels(self):
        hc = HilbertCurve(2, 4)
        with pytest.raises(GeometryError):
            hc.prefix_key([0, 0], 0)
        with pytest.raises(GeometryError):
            hc.prefix_key([0, 0], 5)


class TestLocality:
    def test_nearby_indices_are_nearby_cells(self):
        """The clustering property the index relies on, quantified."""
        hc = HilbertCurve(2, 5)
        rng = np.random.default_rng(1)
        for _ in range(200):
            i = int(rng.integers(0, (1 << hc.total_bits) - 8))
            a = np.array(hc.decode(i))
            b = np.array(hc.decode(i + 7))
            # Within 8 curve steps, cells stay within L1 distance 8.
            assert np.abs(a - b).sum() <= 8


class TestNumpyScalarInputs:
    def test_uint8_coordinates_do_not_overflow(self):
        """Regression: uint8 coords once wrapped in the bit-packing shifts."""
        hc = HilbertCurve(20, 8)
        rng = np.random.default_rng(0)
        as_uint8 = rng.integers(0, 256, size=20, dtype=np.uint8)
        as_int = [int(c) for c in as_uint8]
        assert hc.encode(as_uint8) == hc.encode(as_int)
        assert hc.prefix_key(as_uint8, 2) == hc.prefix_key(as_int, 2)
