"""Cross-checks of the numpy batch encoder against the scalar reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.hilbert.butz import HilbertCurve
from repro.hilbert.vectorized import (
    encode_batch,
    entry_point_batch,
    intra_direction_batch,
    rol_batch,
    ror_batch,
    update_state_batch,
)
from repro.hilbert.gray import entry_point, intra_direction, rotate_left, rotate_right


class TestEncodeBatch:
    @pytest.mark.parametrize(
        "ndims,order,levels",
        [(2, 4, 4), (3, 5, 3), (20, 8, 2), (20, 8, 3), (5, 8, 6)],
    )
    def test_matches_scalar_prefix(self, ndims, order, levels):
        hc = HilbertCurve(ndims, order)
        rng = np.random.default_rng(42)
        pts = rng.integers(0, 1 << order, size=(300, ndims))
        keys = encode_batch(pts, order, levels)
        expected = np.array(
            [hc.prefix_key(p, levels) for p in pts], dtype=np.uint64
        )
        assert np.array_equal(keys, expected)

    def test_full_order_equals_full_encode(self):
        hc = HilbertCurve(4, 4)
        rng = np.random.default_rng(3)
        pts = rng.integers(0, 16, size=(200, 4))
        keys = encode_batch(pts, 4, 4)
        expected = np.array([hc.encode(p) for p in pts], dtype=np.uint64)
        assert np.array_equal(keys, expected)

    def test_rejects_key_overflow(self):
        pts = np.zeros((4, 20), dtype=np.uint8)
        with pytest.raises(GeometryError):
            encode_batch(pts, 8, 4)  # 80 bits > 64

    def test_rejects_out_of_grid(self):
        pts = np.full((2, 3), 300)
        with pytest.raises(GeometryError):
            encode_batch(pts, 8, 1)
        with pytest.raises(GeometryError):
            encode_batch(np.full((2, 3), -1), 8, 1)

    def test_rejects_bad_shape(self):
        with pytest.raises(GeometryError):
            encode_batch(np.zeros(10), 8, 1)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20)
    def test_sorting_by_key_is_curve_order(self, seed):
        """Keys preserve relative curve order at their resolution."""
        hc = HilbertCurve(3, 4)
        rng = np.random.default_rng(seed)
        pts = rng.integers(0, 16, size=(50, 3))
        keys = encode_batch(pts, 4, 2)
        full = np.array([hc.encode(p) for p in pts])
        # Truncation: key = full >> 6; so key order must be compatible.
        assert np.array_equal(keys, full >> 6)


class TestBatchHelpers:
    def test_ror_rol_match_scalar(self):
        rng = np.random.default_rng(0)
        vals = rng.integers(0, 1 << 20, size=100).astype(np.uint64)
        shifts = rng.integers(0, 40, size=100).astype(np.uint64)
        ror = ror_batch(vals, shifts, 20)
        rol = rol_batch(vals, shifts, 20)
        for v, s, r, l in zip(vals, shifts, ror, rol):
            assert int(r) == rotate_right(int(v), int(s), 20)
            assert int(l) == rotate_left(int(v), int(s), 20)

    def test_entry_direction_match_scalar(self):
        n = 12
        w = np.arange(1 << n, dtype=np.uint64)
        e = entry_point_batch(w)
        d = intra_direction_batch(w, n)
        for wi in range(0, 1 << n, 37):
            assert int(e[wi]) == entry_point(wi)
            assert int(d[wi]) == intra_direction(wi, n)

    def test_update_state_matches_scalar(self):
        from repro.hilbert.gray import update_state

        n = 6
        rng = np.random.default_rng(5)
        e = rng.integers(0, 1 << n, size=200).astype(np.uint64)
        d = rng.integers(0, n, size=200).astype(np.uint64)
        w = rng.integers(0, 1 << n, size=200).astype(np.uint64)
        e2, d2 = update_state_batch(e, d, w, n)
        for i in range(200):
            ee, dd = update_state(int(e[i]), int(d[i]), int(w[i]), n)
            assert (int(e2[i]), int(d2[i])) == (ee, dd)
