"""End-to-end tests of the ``repro-s3`` command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.video.synthetic import generate_clip


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """A full CLI pipeline: synth -> extract -> build."""
    tmp = tmp_path_factory.mktemp("cli")
    video = tmp / "clip.npy"
    store = tmp / "db.fp"
    index = tmp / "archive"
    assert main(["synth", "--frames", "150", "--seed", "1",
                 "--out", str(video)]) == 0
    assert main(["extract", str(video), "--video-id", "0",
                 "--out", str(store)]) == 0
    # Depth 20: tight blocks keep coincidental matches (and hence the
    # foreign clip's n_sim) low even on this tiny single-video archive.
    assert main(["build", str(store), "--sigma", "20", "--depth", "20",
                 "--out", str(index)]) == 0
    return {"tmp": tmp, "video": video, "store": store, "index": index}


class TestPipeline:
    def test_info(self, workspace, capsys):
        assert main(["info", str(workspace["store"])]) == 0
        out = capsys.readouterr().out
        assert "fingerprints, dimension 20" in out

    def test_info_json_on_store(self, workspace, capsys):
        import json

        assert main(["info", "--json", str(workspace["store"])]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "store"
        assert payload["ndims"] == 20
        assert payload["rows"] > 0
        assert payload["bytes"] > 0

    def test_info_json_on_index_prefix(self, workspace, capsys):
        import json

        assert main([
            "info", "--json", str(workspace["index"]) + ".store",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["index"]["kind"] == "monolithic"
        assert payload["index"]["depth"] == 20
        assert payload["index"]["sigma"] == 20.0

    def test_query_from_row(self, workspace, capsys):
        assert main(["query", str(workspace["index"]),
                     "--from-row", "3", "--alpha", "0.8"]) == 0
        out = capsys.readouterr().out
        assert "results" in out
        assert "id=0" in out  # the stored fingerprint itself matches

    def test_query_from_file(self, workspace, capsys):
        queries = np.random.default_rng(0).uniform(0, 255, (2, 20))
        qfile = workspace["tmp"] / "q.npy"
        np.save(qfile, queries)
        assert main(["query", str(workspace["index"]),
                     "--queries", str(qfile)]) == 0
        out = capsys.readouterr().out
        assert out.count("query") == 2

    def test_query_requires_source(self, workspace, capsys):
        assert main(["query", str(workspace["index"])]) == 2

    def test_detect_finds_copy(self, workspace, capsys):
        clip = generate_clip(150, seed=1)  # same seed as the indexed video
        candidate = workspace["tmp"] / "cand.npy"
        np.save(candidate, clip.frames[30:110])
        code = main(["detect", str(workspace["index"]), str(candidate),
                     "--threshold", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "copy of video 0" in out
        assert "b=-30" in out  # candidate starts at frame 30

    def test_detect_rejects_foreign_clip(self, workspace, capsys):
        foreign = generate_clip(80, seed=98765)
        candidate = workspace["tmp"] / "foreign.npy"
        np.save(candidate, foreign.frames)
        code = main(["detect", str(workspace["index"]), str(candidate),
                     "--threshold", "30"])
        assert code == 1
        assert "no copy detected" in capsys.readouterr().out


class TestSegmented:
    @pytest.fixture(scope="class")
    def live(self, workspace, tmp_path_factory):
        """A segmented index directory built with `ingest`."""
        directory = tmp_path_factory.mktemp("seg") / "live"
        assert main(["ingest", str(directory), str(workspace["store"]),
                     "--sigma", "20", "--depth", "20", "--flush"]) == 0
        return directory

    def test_ingest_creates_directory(self, live, capsys):
        assert (live / "MANIFEST.json").exists()
        assert list(live.glob("seg-*.store"))

    def test_ingest_appends_segment(self, live, workspace, capsys):
        assert main(["ingest", str(live), str(workspace["store"]),
                     "--flush"]) == 0
        out = capsys.readouterr().out
        assert "ingested" in out
        assert "2 segments" in out

    def test_info_on_directory(self, live, capsys):
        assert main(["info", str(live)]) == 0
        out = capsys.readouterr().out
        assert "segmented index" in out
        assert "seg-000001" in out

    def test_info_json_on_directory(self, live, capsys):
        import json

        assert main(["info", "--json", str(live)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "segmented"
        assert payload["rows"] > 0
        assert payload["segments"]
        assert all(seg["bytes"] > 0 for seg in payload["segments"])

    def test_query_from_row_on_directory(self, live, capsys):
        assert main(["query", str(live), "--from-row", "3",
                     "--alpha", "0.8"]) == 0
        out = capsys.readouterr().out
        assert "results" in out
        assert "id=0" in out

    def test_detect_on_directory(self, live, workspace, capsys):
        clip = generate_clip(150, seed=1)
        candidate = workspace["tmp"] / "seg-cand.npy"
        np.save(candidate, clip.frames[30:110])
        code = main(["detect", str(live), str(candidate),
                     "--threshold", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "copy of video 0" in out

    def test_compact_force_merges(self, live, capsys):
        assert main(["compact", str(live), "--force"]) == 0
        out = capsys.readouterr().out
        assert "compacted 2 segments" in out
        assert "-> 1 segments" in out

    def test_compact_nothing_to_do(self, live, capsys):
        assert main(["compact", str(live)]) == 0
        assert "nothing to compact" in capsys.readouterr().out


class TestErrors:
    def test_missing_store_reports_error(self, tmp_path, capsys):
        code = main(["info", str(tmp_path / "nope.fp")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_compact_missing_directory_reports_error(self, tmp_path, capsys):
        code = main(["compact", str(tmp_path / "nope")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestServeRequest:
    """`repro-s3 request` against an in-process detection server."""

    @pytest.fixture(scope="class")
    def server(self, workspace):
        from repro.index.s3 import S3Index
        from repro.serve import ServeConfig, ServerThread

        index = S3Index.load(str(workspace["index"]))
        with ServerThread(
            index, ServeConfig(port=0, alpha=0.8, max_wait_ms=1.0)
        ) as thread:
            yield thread

    def test_request_health(self, server, capsys):
        assert main(["request", "health",
                     "--port", str(server.port)]) == 0
        out = capsys.readouterr().out
        assert '"kind": "monolithic"' in out

    def test_request_query(self, server, workspace, capsys):
        from repro.index.s3 import S3Index

        index = S3Index.load(str(workspace["index"]))
        qfile = workspace["tmp"] / "serve-q.npy"
        np.save(qfile, index.store.fingerprints[:2].astype(np.float64))
        assert main(["request", "query", "--port", str(server.port),
                     "--queries", str(qfile)]) == 0
        out = capsys.readouterr().out
        assert out.count("query") == 2
        assert "id=0" in out  # the stored fingerprint matches itself

    def test_request_stats(self, server, capsys):
        assert main(["request", "stats",
                     "--port", str(server.port)]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["batcher"]["queries"] >= 2


class TestMerge:
    def test_merge_concatenates(self, workspace, tmp_path, capsys):
        merged = tmp_path / "merged.fp"
        code = main([
            "merge", str(workspace["store"]), str(workspace["store"]),
            "--out", str(merged),
        ])
        assert code == 0
        from repro.index.store import read_header

        count, ndims = read_header(merged)
        single, _ = read_header(workspace["store"])
        assert count == 2 * single
        assert ndims == 20


class TestArgumentValidation:
    """Out-of-domain knobs must fail with a one-line `error:` message."""

    @pytest.mark.parametrize("argv_extra, needle", [
        (["--batch-size", "0"], "--batch-size must be >= 1"),
        (["--workers", "0"], "--workers must be >= 1"),
        (["--workers", "-3"], "--workers must be >= 1"),
        (["--alpha", "0"], "--alpha must be in (0, 1]"),
        (["--alpha", "1.5"], "--alpha must be in (0, 1]"),
    ])
    def test_query_rejects_bad_knobs(
        self, workspace, capsys, argv_extra, needle
    ):
        code = main(["query", str(workspace["index"]),
                     "--from-row", "0"] + argv_extra)
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert needle in err

    def test_detect_rejects_bad_alpha(self, workspace, capsys):
        code = main(["detect", str(workspace["index"]),
                     str(workspace["video"]), "--alpha", "-0.2"])
        assert code == 2
        assert "--alpha must be in (0, 1]" in capsys.readouterr().err

    def test_request_unreachable_reports_friendly_error(self, capsys):
        code = main(["request", "stats", "--port", "1",
                     "--timeout", "0.2", "--retries", "0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestBuildOptions:
    def test_build_rejects_bad_depth(self, workspace, tmp_path, capsys):
        code = main([
            "build", str(workspace["store"]), "--depth", "99",
            "--out", str(tmp_path / "bad"),
        ])
        assert code == 2
        assert "depth" in capsys.readouterr().err

    def test_extract_featureless_video_reports_error(self, tmp_path, capsys):
        flat = np.full((30, 64, 64), 128, dtype=np.uint8)
        video = tmp_path / "flat.npy"
        np.save(video, flat)
        code = main([
            "extract", str(video), "--video-id", "0",
            "--out", str(tmp_path / "flat.fp"),
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestTierCommands:
    @pytest.fixture()
    def tiered(self, workspace, tmp_path):
        """A segmented directory with a budget that forces demotion."""
        from repro.index.segmented import SegmentedS3Index
        from repro.storage import StorageConfig

        directory = tmp_path / "tiered"
        assert main(["ingest", str(directory), str(workspace["store"]),
                     "--sigma", "20", "--depth", "20", "--flush"]) == 0
        assert main(["ingest", str(directory), str(workspace["store"]),
                     "--flush"]) == 0
        with SegmentedS3Index.open(
            directory, storage=StorageConfig(budget_bytes=0)
        ):
            pass
        return directory

    def test_tier_status(self, tiered, capsys):
        assert main(["tier", "status", str(tiered)]) == 0
        out = capsys.readouterr().out
        assert "tiered storage attached" in out
        assert "cold: 2 segment(s)" in out

    def test_tier_status_json(self, tiered, capsys):
        import json

        assert main(["tier", "status", str(tiered), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tiered"] is True
        assert payload["tiers"]["cold"]["segments"] == 2
        assert payload["manager"]["budget_bytes"] == 0

    def test_info_survives_cold_segments(self, tiered, capsys):
        import json

        assert main(["info", str(tiered)]) == 0
        assert "[cold]" in capsys.readouterr().out
        assert main(["info", "--json", str(tiered)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(seg["bytes"] > 0 for seg in payload["segments"])
        assert all(seg["tier"] == "cold" for seg in payload["segments"])

    def test_tier_attach_persists_and_demotes(self, workspace, tmp_path,
                                              capsys):
        import json

        directory = tmp_path / "attach"
        assert main(["ingest", str(directory), str(workspace["store"]),
                     "--sigma", "20", "--flush"]) == 0
        assert main(["tier", "attach", str(directory),
                     "--storage-budget", "0"]) == 0
        assert "demotion(s)" in capsys.readouterr().out
        # The config persisted: a plain status reopen sees cold tiers.
        assert main(["tier", "status", str(directory), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tiered"] is True
        assert payload["manager"]["budget_bytes"] == 0
        assert payload["tiers"]["cold"]["segments"] == 1

    def test_tier_attach_requires_a_flag(self, tiered, capsys):
        assert main(["tier", "attach", str(tiered)]) == 2
        assert "--storage-budget" in capsys.readouterr().err

    def test_query_against_cold_tiers(self, tiered, capsys):
        assert main(["query", str(tiered), "--from-row", "3",
                     "--alpha", "0.8"]) == 0
        assert "results" in capsys.readouterr().out

    def test_storage_budget_parse_rejects_garbage(self, tiered, capsys):
        code = main(["serve", str(tiered), "--storage-budget", "lots"])
        assert code == 2
        assert "byte size" in capsys.readouterr().err

    def test_storage_budget_rejected_on_monolithic(self, workspace, capsys):
        code = main(["serve", str(workspace["index"]),
                     "--storage-budget", "64M"])
        assert code == 2
        assert "segmented" in capsys.readouterr().err
