"""Blob backend contract tests: atomicity, faults, key hygiene."""

import pytest

from repro.errors import StorageError
from repro.storage import BLOB_SUFFIX, BlobBackend, FakeBlobBackend, FileBlobBackend


@pytest.fixture(params=["file", "fake"])
def backend(request, tmp_path):
    if request.param == "file":
        return FileBlobBackend(tmp_path / "blobs")
    return FakeBlobBackend()


class TestBackendContract:
    def test_satisfies_protocol(self, backend):
        assert isinstance(backend, BlobBackend)

    def test_put_get_roundtrip(self, backend):
        backend.put("seg-000001", b"hello blob")
        assert backend.get("seg-000001") == b"hello blob"
        assert backend.exists("seg-000001")
        assert not backend.exists("seg-000099")

    def test_get_range(self, backend):
        backend.put("seg-000001", bytes(range(100)))
        assert backend.get_range("seg-000001", 10, 5) == bytes(range(10, 15))
        assert backend.get_range("seg-000001", 0, 100) == bytes(range(100))

    def test_overwrite_replaces(self, backend):
        backend.put("k", b"old")
        backend.put("k", b"new longer payload")
        assert backend.get("k") == b"new longer payload"

    def test_missing_key_raises_storage_error(self, backend):
        with pytest.raises(StorageError):
            backend.get("seg-999999")
        with pytest.raises(StorageError):
            backend.get_range("seg-999999", 0, 10)

    def test_delete_is_idempotent(self, backend):
        backend.put("k", b"x")
        backend.delete("k")
        assert not backend.exists("k")
        backend.delete("k")  # second delete is a no-op, not an error

    def test_keys_sorted(self, backend):
        for name in ("seg-000003", "seg-000001", "seg-000002"):
            backend.put(name, b"x")
        assert backend.keys() == ["seg-000001", "seg-000002", "seg-000003"]


class TestFileBackend:
    def test_put_leaves_no_tmp_file(self, tmp_path):
        backend = FileBlobBackend(tmp_path / "blobs")
        backend.put("seg-000001", b"payload")
        names = [p.name for p in (tmp_path / "blobs").iterdir()]
        assert names == ["seg-000001" + BLOB_SUFFIX]

    @pytest.mark.parametrize("key", ["", "a/b", "../escape", ".hidden"])
    def test_invalid_keys_rejected(self, tmp_path, key):
        backend = FileBlobBackend(tmp_path / "blobs")
        with pytest.raises(StorageError):
            backend.put(key, b"x")
        with pytest.raises(StorageError):
            backend.get(key)

    def test_keys_ignores_foreign_files(self, tmp_path):
        backend = FileBlobBackend(tmp_path / "blobs")
        backend.put("seg-000001", b"x")
        (tmp_path / "blobs" / "notes.txt").write_text("not a blob")
        assert backend.keys() == ["seg-000001"]


class TestFakeBackendFaults:
    def test_fail_reads_then_recovers(self):
        backend = FakeBlobBackend()
        backend.put("k", b"payload")
        backend.fail_reads = 2
        with pytest.raises(StorageError):
            backend.get("k")
        with pytest.raises(StorageError):
            backend.get_range("k", 0, 4)
        # The budget of injected failures is spent; reads work again.
        assert backend.get("k") == b"payload"

    def test_torn_reads_truncate_range_gets(self):
        backend = FakeBlobBackend()
        backend.put("k", bytes(range(64)))
        backend.torn_reads = 1
        torn = backend.get_range("k", 0, 64)
        assert len(torn) == 32
        assert backend.get_range("k", 0, 64) == bytes(range(64))

    def test_counters(self):
        backend = FakeBlobBackend()
        backend.put("k", bytes(10))
        backend.get("k")
        backend.get_range("k", 0, 4)
        assert backend.puts == 1
        assert backend.gets == 1
        assert backend.range_gets == 1
        assert backend.bytes_read == 14
