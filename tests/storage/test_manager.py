"""Tier manager tests: demotion, promotion, budgets, GC, sidecars."""

import numpy as np
import pytest

from repro.distortion.model import NormalDistortionModel
from repro.errors import StorageError
from repro.index.segmented import SegmentedS3Index
from repro.index.segmented.sketch import sketch_filename
from repro.storage import (
    FakeBlobBackend,
    StorageConfig,
    keys_filename,
)

NDIMS = 8
SIGMA = 12.0


def make_records(n, seed=0):
    rng = np.random.default_rng(seed)
    fp = rng.integers(0, 256, size=(n, NDIMS), dtype=np.uint8)
    ids = rng.integers(0, 50, n).astype(np.uint32)
    tcs = rng.uniform(0, 500, n)
    return fp, ids, tcs


def make_tiered(directory, num_segments=3, rows=400, budget=None,
                backend=None, promote_after=2):
    backend = backend if backend is not None else FakeBlobBackend()
    index = SegmentedS3Index.create(
        directory,
        ndims=NDIMS,
        model=NormalDistortionModel(NDIMS, SIGMA),
        flush_rows=10 ** 9,
        auto_compact=False,
        storage=StorageConfig(
            budget_bytes=budget, backend=backend,
            promote_after=promote_after, prefetch_workers=0,
        ),
    )
    batches = []
    for i in range(num_segments):
        batch = make_records(rows, seed=i)
        index.add(*batch)
        index.flush()
        batches.append(batch)
    return index, backend, batches


class TestStorageConfig:
    def test_validation(self):
        with pytest.raises(StorageError):
            StorageConfig(budget_bytes=-1)
        with pytest.raises(StorageError):
            StorageConfig(promote_after=0)

    def test_manifest_roundtrip(self):
        config = StorageConfig(
            budget_bytes=1234, cold_dir="icy", promote_after=5
        )
        again = StorageConfig.from_manifest(config.to_manifest())
        assert again.budget_bytes == 1234
        assert again.cold_dir == "icy"
        assert again.promote_after == 5


class TestDemotion:
    def test_demote_moves_bytes_to_backend(self, tmp_path):
        index, backend, _ = make_tiered(tmp_path / "idx")
        seg = index._segments[0]
        name = seg.meta.name
        store_path = tmp_path / "idx" / (name + ".store")
        original = store_path.read_bytes()

        index.storage.demote(seg)

        assert backend.get(name) == original
        assert not store_path.exists()
        # Copy-on-write: the old Segment object is untouched (pinned
        # readers keep it); the *live* view carries the cold replacement.
        assert seg.index is not None and seg.cold is None
        live = index._segments[0]
        assert live.index is None and live.cold is not None
        assert live.meta.tier == "cold"
        # Sidecars stay resident: selection never touches the backend.
        assert (tmp_path / "idx" / sketch_filename(name)).is_file()
        assert (tmp_path / "idx" / keys_filename(name)).is_file()
        index.close()

    def test_budget_demotes_lru_by_last_scan(self, tmp_path):
        index, _, batches = make_tiered(tmp_path / "idx", num_segments=3)
        per_seg = index.storage.segment_bytes(index._segments[0])
        # Scan segments 1 and 2 (queries touch every segment, bumping
        # all three, so touch directly for a deterministic order).
        index.storage.touch(index._segments[1])
        index.storage.touch(index._segments[2])
        object.__setattr__(index.storage, "budget_bytes", 2 * per_seg)
        index.storage.enforce_budget()
        tiers = [s.meta.tier for s in index._segments]
        assert tiers == ["cold", "hot", "hot"]
        index.close()

    def test_queries_identical_across_demotion(self, tmp_path):
        index, _, batches = make_tiered(tmp_path / "idx")
        q = batches[0][0][5].astype(np.float64)
        before = index.statistical_query(q, alpha=0.8)
        for seg in list(index._segments):
            index.storage.demote(seg)
        after = index.statistical_query(q, alpha=0.8)
        assert np.array_equal(np.sort(before.ids), np.sort(after.ids))
        assert np.array_equal(
            np.sort(before.timecodes), np.sort(after.timecodes)
        )
        index.close()

    def test_record_fetches_single_row_from_cold(self, tmp_path):
        index, backend, batches = make_tiered(tmp_path / "idx", rows=100)
        fp0, ids0, tcs0 = batches[0]
        index.storage.demote(index._segments[0])
        reads_before = backend.bytes_read
        fp, _id, _tc = index.record(7)
        # One row's columns, not the whole 100-row segment.
        assert backend.bytes_read - reads_before < 100
        # The row exists in the stored batch (physical order is
        # curve-sorted, so compare as a membership check).
        assert any(np.array_equal(fp, row) for row in fp0)
        index.close()


class TestPromotion:
    def test_promotes_after_hysteresis(self, tmp_path):
        index, _, batches = make_tiered(
            tmp_path / "idx", num_segments=2, promote_after=2
        )
        seg = index._segments[0]
        index.storage.demote(seg)
        q = batches[0][0][3].astype(np.float64)
        index.statistical_query(q, alpha=0.8)  # touch 1: stays cold
        assert index._segments[0].meta.tier == "cold"
        index.statistical_query(q, alpha=0.8)  # touch 2: promotes
        live = index._segments[0]
        assert live.meta.tier == "warm"
        assert live.index is not None
        index.close()

    def test_budget_blocks_promotion(self, tmp_path):
        index, _, batches = make_tiered(
            tmp_path / "idx", num_segments=2, promote_after=1
        )
        seg = index._segments[0]
        per_seg = index.storage.segment_bytes(seg)
        index.storage.demote(seg)
        # Budget too small for the segment alone: it can never promote
        # (a budget >= one segment would instead evict an LRU victim).
        index.storage.budget_bytes = per_seg - 1
        q = batches[0][0][3].astype(np.float64)
        for _ in range(4):
            index.statistical_query(q, alpha=0.8)
        assert index._segments[0].meta.tier == "cold"
        index.close()


class TestReopenAndGC:
    def test_reopen_never_fetches_cold_stores(self, tmp_path):
        index, backend, batches = make_tiered(tmp_path / "idx")
        for seg in list(index._segments):
            index.storage.demote(seg)
        index.close()

        gets_before = (backend.gets, backend.range_gets)
        reopened = SegmentedS3Index.open(
            tmp_path / "idx", storage=StorageConfig(
                backend=backend, prefetch_workers=0
            ),
        )
        # Rebuild-on-open works from sidecars alone.
        assert (backend.gets, backend.range_gets) == gets_before
        assert all(s.meta.tier == "cold" for s in reopened._segments)

        q = batches[1][0][2].astype(np.float64)
        result = reopened.statistical_query(q, alpha=0.8)
        assert len(result) >= 1
        reopened.close()

    def test_orphan_blob_gc_keeps_manifest_references(self, tmp_path):
        index, backend, _ = make_tiered(tmp_path / "idx", num_segments=2)
        index.storage.demote(index._segments[0])
        live = index._segments[0].meta.name
        backend.put("seg-999999", b"junk from a crashed demotion")
        index.storage.collect_orphan_blobs()
        assert backend.exists(live)
        assert not backend.exists("seg-999999")
        index.close()

    def test_compaction_discards_input_blobs(self, tmp_path):
        index, backend, _ = make_tiered(tmp_path / "idx", num_segments=3)
        index.storage.demote(index._segments[0])
        old = [s.meta.name for s in index._segments]
        result = index.compact(force=True)
        assert result is not None
        for name in old:
            assert not backend.exists(name)
        assert len(index) == 3 * 400
        index.close()

    def test_open_cold_without_config_raises(self, tmp_path):
        index, backend, _ = make_tiered(tmp_path / "idx")
        index.storage.demote(index._segments[0])
        index.close()
        with pytest.raises(StorageError):
            SegmentedS3Index.open(tmp_path / "idx")
