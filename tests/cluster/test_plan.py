"""Shard planner invariants: exactly-once assignment, covering ranges.

The two properties everything downstream leans on:

* every source segment is assigned to **exactly one** shard (else the
  merged results would duplicate or drop rows);
* the shard key ranges are **disjoint and cover** ``[0, 2^key_bits)``
  (else an ingest key could route to zero or two shards).
"""

import numpy as np
import pytest

from repro.cluster import (
    ClusterManifest,
    ClusterSupervisor,
    plan_cluster,
)
from repro.distortion.model import NormalDistortionModel
from repro.errors import ConfigurationError
from repro.index.segmented import Manifest, SegmentedS3Index

NDIMS = 8
SIGMA = 10.0
NUM_SEGMENTS = 6
ROWS_PER_SEGMENT = 300


def make_source(directory, rows=NUM_SEGMENTS * ROWS_PER_SEGMENT, seed=0):
    rng = np.random.default_rng(seed)
    fp = rng.integers(0, 256, size=(rows, NDIMS), dtype=np.uint8)
    ids = rng.integers(0, 9, size=rows).astype(np.uint32)
    tcs = rng.uniform(0, 100, rows)
    index = SegmentedS3Index.create(
        directory,
        ndims=NDIMS,
        model=NormalDistortionModel(NDIMS, SIGMA),
        flush_rows=ROWS_PER_SEGMENT,
        auto_compact=False,
    )
    for start in range(0, rows, ROWS_PER_SEGMENT):
        index.add(
            fp[start:start + ROWS_PER_SEGMENT],
            ids[start:start + ROWS_PER_SEGMENT],
            tcs[start:start + ROWS_PER_SEGMENT],
        )
    index.flush()
    index.close()
    return fp, ids, tcs


@pytest.fixture(scope="module")
def source(tmp_path_factory):
    directory = tmp_path_factory.mktemp("plan") / "src"
    make_source(directory)
    return directory


@pytest.mark.parametrize("num_shards", [1, 2, 3, NUM_SEGMENTS])
def test_exactly_once_assignment(source, tmp_path, num_shards):
    manifest = plan_cluster(
        source, tmp_path / "c", num_shards=num_shards
    )
    source_manifest = Manifest.load(source)
    source_names = [seg.name for seg in source_manifest.segments]
    assigned = [
        a.name for spec in manifest.shards for a in spec.segments
    ]
    # Every segment in exactly one shard: same multiset, no repeats.
    assert sorted(assigned) == sorted(source_names)
    assert len(set(assigned)) == len(assigned)
    assert (
        sum(spec.rows for spec in manifest.shards)
        == source_manifest.total_sealed()
    )
    for spec in manifest.shards:
        assert spec.rows == sum(a.count for a in spec.segments)
        assert len(spec.segments) >= 1


@pytest.mark.parametrize("num_shards", [1, 2, 3, NUM_SEGMENTS])
def test_disjoint_covering_ranges(source, tmp_path, num_shards):
    manifest = plan_cluster(
        source, tmp_path / "c", num_shards=num_shards
    )
    bounds = [(s.key_lo, s.key_hi) for s in manifest.shards]
    assert bounds[0][0] == 0
    assert bounds[-1][1] == 1 << manifest.key_bits
    for lo, hi in bounds:
        assert lo < hi
    for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
        assert hi == lo  # adjacent: no gap, no overlap


def test_global_bases_match_source_order(source, tmp_path):
    manifest = plan_cluster(source, tmp_path / "c", num_shards=3)
    source_manifest = Manifest.load(source)
    base = 0
    expected = {}
    for pos, seg in enumerate(source_manifest.segments):
        expected[seg.name] = (base, pos)
        base += seg.count
    for spec in manifest.shards:
        for a in spec.segments:
            assert (a.global_base, a.source_pos) == expected[a.name]


def test_replicas_are_openable_indexes(source, tmp_path):
    manifest = plan_cluster(
        source, tmp_path / "c", num_shards=2, replicas=2
    )
    for spec in manifest.shards:
        assert len(spec.replicas) == 2
        for rel in spec.replicas:
            with SegmentedS3Index.open(
                tmp_path / "c" / rel, auto_compact=False
            ) as replica:
                assert len(replica) == spec.rows
                assert replica.pending_rows == 0


def test_manifest_roundtrip(source, tmp_path):
    planned = plan_cluster(source, tmp_path / "c", num_shards=3)
    loaded = ClusterManifest.load(tmp_path / "c")
    assert loaded.ndims == planned.ndims
    assert loaded.key_bits == planned.key_bits
    assert loaded.total_rows == planned.total_rows
    for a, b in zip(planned.shards, loaded.shards):
        assert (a.shard, a.key_lo, a.key_hi, a.rows) == (
            b.shard, b.key_lo, b.key_hi, b.rows
        )
        assert a.segments == b.segments
        assert a.replicas == b.replicas
        assert a.presence.depth == b.presence.depth
        assert np.array_equal(a.presence.occupied, b.presence.occupied)


def test_presence_covers_own_segments(source, tmp_path):
    manifest = plan_cluster(source, tmp_path / "c", num_shards=3)
    for spec in manifest.shards:
        occupied = spec.presence.occupied
        assert occupied.size > 0
        # Its own occupied prefixes are trivially covered ...
        assert spec.presence.covers_any(occupied, spec.presence.depth)
        # ... and a mask over (occupied + complement) keeps exactly
        # the occupied half.
        universe = np.arange(
            1 << spec.presence.depth, dtype=np.uint64
        )
        mask = spec.presence.keep_mask(universe, spec.presence.depth)
        assert np.array_equal(np.flatnonzero(mask), occupied.astype(np.int64))


def test_unsealed_source_requires_seal_flag(tmp_path):
    directory = tmp_path / "src"
    rng = np.random.default_rng(7)
    index = SegmentedS3Index.create(
        directory,
        ndims=NDIMS,
        model=NormalDistortionModel(NDIMS, SIGMA),
        flush_rows=500,
        auto_compact=False,
    )
    fp = rng.integers(0, 256, size=(700, NDIMS), dtype=np.uint8)
    for start in (0, 500):  # second chunk stays in the memtable
        index.add(
            fp[start:start + 500],
            np.zeros(min(500, 700 - start), dtype=np.uint32),
            np.zeros(min(500, 700 - start)),
        )
    index.close()
    with pytest.raises(ConfigurationError, match="unsealed"):
        plan_cluster(directory, tmp_path / "c1", num_shards=1)
    manifest = plan_cluster(
        directory, tmp_path / "c2", num_shards=1, seal=True
    )
    assert manifest.total_rows == 700


def test_too_many_shards_rejected(source, tmp_path):
    with pytest.raises(ConfigurationError, match="segments"):
        plan_cluster(
            source, tmp_path / "c", num_shards=NUM_SEGMENTS + 1
        )


def test_existing_cluster_dir_rejected(source, tmp_path):
    plan_cluster(source, tmp_path / "c", num_shards=2)
    with pytest.raises(ConfigurationError, match="already"):
        plan_cluster(source, tmp_path / "c", num_shards=2)


def test_supervisor_endpoints_cover_every_replica(source, tmp_path):
    plan_cluster(source, tmp_path / "c", num_shards=2, replicas=2)
    supervisor = ClusterSupervisor(tmp_path / "c", mode="thread")
    # Not started: the endpoint table still enumerates the topology.
    table = supervisor.endpoints()
    assert sorted(table) == [0, 1]
    assert all(len(reps) == 2 for reps in table.values())


class TestTieredSource:
    """Planning from and into tiered storage (docs/storage-tiers.md)."""

    def _tiered_source(self, tmp_path):
        from repro.storage import StorageConfig

        directory = tmp_path / "src"
        make_source(directory)
        # Demote half the archive: planning must work without ever
        # promoting a cold segment.
        with SegmentedS3Index.open(
            directory,
            storage=StorageConfig(budget_bytes=None, cold_dir="cold"),
        ) as index:
            for seg in list(index._segments)[: NUM_SEGMENTS // 2]:
                index.storage.demote(seg)
        return directory

    def test_plan_from_cold_source_materialises_hot_replicas(
        self, tmp_path
    ):
        source_dir = self._tiered_source(tmp_path)
        manifest = plan_cluster(source_dir, tmp_path / "c", num_shards=2)
        for spec in manifest.shards:
            for rel in spec.replicas:
                replica_dir = tmp_path / "c" / rel
                for a in spec.segments:
                    assert (replica_dir / (a.name + ".store")).is_file()
                with SegmentedS3Index.open(
                    replica_dir, auto_compact=False
                ) as replica:
                    assert len(replica) == spec.rows
        # The source's own tiers are untouched by planning.
        src = Manifest.load(source_dir)
        assert sum(s.tier == "cold" for s in src.segments) \
            == NUM_SEGMENTS // 2

    def test_replicas_inherit_tier_budget(self, tmp_path):
        source_dir = self._tiered_source(tmp_path)
        budget = 2 * ROWS_PER_SEGMENT * (NDIMS + 12)
        manifest = plan_cluster(
            source_dir, tmp_path / "c", num_shards=2,
            storage_budget=budget,
        )
        for spec in manifest.shards:
            replica_dir = tmp_path / "c" / spec.replicas[0]
            stamped = Manifest.load(replica_dir)
            assert stamped.storage["budget_bytes"] == budget
            with SegmentedS3Index.open(
                replica_dir, auto_compact=False
            ) as replica:
                info = replica.storage_info()
                assert info["tiered"]
                resident = (
                    info["tiers"]["hot"]["bytes"]
                    + info["tiers"]["warm"]["bytes"]
                )
                assert resident <= budget
