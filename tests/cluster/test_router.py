"""Router acceptance: bit-identity to a single node, failover, ingest.

The headline property, hypothesis-driven: for any query batch, the
results a :class:`~repro.cluster.router.ClusterRouter` merges from its
shards are **bit-identical** — rows, ids, timecodes, fingerprint bytes —
to the same batch against one server over the unsharded index, at shard
counts 1, 2 and 5, and still when a replica is SIGKILL-equivalently
dropped mid-batch (thread mode: abrupt stop + failover to the second
replica).
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterManifest,
    ClusterRouter,
    ClusterSupervisor,
    RouterConfig,
    plan_cluster,
)
from repro.distortion.model import NormalDistortionModel
from repro.index.segmented import SegmentedS3Index
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServerThread,
    ServiceThread,
)

NDIMS = 8
SIGMA = 10.0
ALPHA = 0.8
NUM_SEGMENTS = 5
ROWS_PER_SEGMENT = 360
TOTAL_ROWS = NUM_SEGMENTS * ROWS_PER_SEGMENT
SHARD_COUNTS = (1, 2, 5)


def _make_fingerprints(rows, seed=3):
    # Clustered around a few centres so statistical queries actually
    # match rows (uniform noise would make every result empty).
    rng = np.random.default_rng(seed)
    centers = rng.integers(40, 216, size=(10, NDIMS))
    assign = rng.integers(0, 10, size=rows)
    fp = np.clip(
        centers[assign] + rng.normal(0, 8, (rows, NDIMS)), 0, 255
    ).astype(np.uint8)
    ids = rng.integers(0, 7, size=rows).astype(np.uint32)
    tcs = rng.uniform(0, 100, rows)
    return fp, ids, tcs


@pytest.fixture(scope="module")
def corpus():
    return _make_fingerprints(TOTAL_ROWS)


@pytest.fixture(scope="module")
def source(tmp_path_factory, corpus):
    directory = tmp_path_factory.mktemp("router") / "src"
    fp, ids, tcs = corpus
    index = SegmentedS3Index.create(
        directory,
        ndims=NDIMS,
        model=NormalDistortionModel(NDIMS, SIGMA),
        flush_rows=ROWS_PER_SEGMENT,
        auto_compact=False,
    )
    for start in range(0, TOTAL_ROWS, ROWS_PER_SEGMENT):
        end = start + ROWS_PER_SEGMENT
        index.add(fp[start:end], ids[start:end], tcs[start:end])
    index.flush()
    index.close()
    return directory


@pytest.fixture(scope="module")
def single_node(source):
    """The baseline: one server over the unsharded index."""
    index = SegmentedS3Index.open(source, auto_compact=False, mmap=True)
    with ServerThread(index, ServeConfig(port=0, alpha=ALPHA)) as thread:
        with ServeClient(port=thread.port, timeout=30.0) as client:
            yield client


@pytest.fixture(scope="module", params=SHARD_COUNTS)
def routed(request, tmp_path_factory, source):
    """A running cluster (thread mode) at each shard count."""
    num_shards = request.param
    cluster_dir = tmp_path_factory.mktemp(f"shards{num_shards}") / "c"
    plan_cluster(source, cluster_dir, num_shards=num_shards)
    supervisor = ClusterSupervisor(
        cluster_dir,
        mode="thread",
        serve_config=ServeConfig(port=0, alpha=ALPHA),
    ).start()
    router = ClusterRouter(
        ClusterManifest.load(cluster_dir),
        supervisor.endpoints(),
        RouterConfig(port=0, alpha=ALPHA),
    )
    thread = ServiceThread(router).start()
    client = ServeClient(port=thread.port, timeout=30.0)
    yield client
    client.close()
    thread.stop()
    supervisor.stop()


def _assert_results_equal(base, got):
    assert len(base) == len(got)
    for b, g in zip(base, got):
        assert np.array_equal(b.rows, g.rows)
        assert np.array_equal(b.ids, g.ids)
        assert np.array_equal(b.timecodes, g.timecodes)
        if b.fingerprints is None:
            assert g.fingerprints is None
        else:
            assert np.array_equal(b.fingerprints, g.fingerprints)


class TestBitIdentity:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        batch=st.integers(min_value=1, max_value=6),
        jitter=st.floats(min_value=0.0, max_value=12.0),
    )
    @settings(max_examples=12, deadline=None)
    def test_router_equals_single_node(
        self, routed, single_node, corpus, seed, batch, jitter
    ):
        fp, _, _ = corpus
        rng = np.random.default_rng(seed)
        picks = rng.integers(0, TOTAL_ROWS, size=batch)
        queries = fp[picks].astype(np.float64)
        queries += rng.normal(0.0, jitter, queries.shape)
        base = single_node.query(queries, include_fingerprints=True)
        got = routed.query(queries, include_fingerprints=True)
        _assert_results_equal(base, got)

    def test_matches_inprocess_batch_api(
        self, routed, source, corpus
    ):
        """Wire results equal the engine's statistical_query_batch."""
        fp, _, _ = corpus
        rng = np.random.default_rng(11)
        queries = fp[rng.integers(0, TOTAL_ROWS, 8)].astype(np.float64)
        with SegmentedS3Index.open(
            source, auto_compact=False, mmap=True
        ) as index:
            index.reset_threshold_cache()
            expected = index.statistical_query_batch(queries, ALPHA)
        got = routed.query(queries)
        assert len(expected) == len(got)
        for e, g in zip(expected, got):
            assert np.array_equal(e.rows, g.rows)
            assert np.array_equal(e.ids, g.ids)
            assert np.array_equal(e.timecodes, g.timecodes)

    def test_detect_equals_single_node(self, routed, single_node, corpus):
        fp, _, _ = corpus
        rng = np.random.default_rng(5)
        picks = rng.integers(0, TOTAL_ROWS, 12)
        candidates = fp[picks].astype(np.float64)
        timecodes = np.arange(12, dtype=np.float64)
        base = single_node.detect(candidates, timecodes, threshold=1)
        got = routed.detect(candidates, timecodes, threshold=1)
        assert base == got

    def test_health_and_stats_shape(self, routed):
        health = routed.health()
        assert health["live"] is True
        assert health["ready"] is True
        assert health["index"]["kind"] == "cluster"
        stats = routed.stats()
        assert stats["ready"] is True
        per_shard = stats["cluster"]["per_shard"]
        assert len(per_shard) == stats["cluster"]["shards"]
        for entry in per_shard:
            assert {"fanouts", "skips", "failovers", "latency"} <= set(entry)


class TestFailover:
    @pytest.fixture()
    def replicated(self, tmp_path_factory, source):
        """2 shards x 2 replicas, healing disabled (kills stay down)."""
        cluster_dir = tmp_path_factory.mktemp("failover") / "c"
        plan_cluster(source, cluster_dir, num_shards=2, replicas=2)
        supervisor = ClusterSupervisor(
            cluster_dir,
            mode="thread",
            serve_config=ServeConfig(port=0, alpha=ALPHA),
            heal=False,
        ).start()
        router = ClusterRouter(
            ClusterManifest.load(cluster_dir),
            supervisor.endpoints(),
            # Cache off: the hammer repeats one batch, and cached
            # answers would never touch (or fail over) the replicas.
            RouterConfig(port=0, alpha=ALPHA, cache="off"),
        )
        thread = ServiceThread(router).start()
        yield supervisor, router, thread.port
        thread.stop()
        supervisor.stop()

    def test_replica_killed_mid_batch(
        self, replicated, single_node, corpus
    ):
        """Queries racing a replica kill still return identical results.

        A hammer thread streams query batches while shard 0's first
        replica is dropped; every response must be present and
        bit-identical to the single node — the router fails over to the
        surviving replica instead of surfacing the loss.
        """
        supervisor, router, port = replicated
        fp, _, _ = corpus
        rng = np.random.default_rng(23)
        queries = fp[rng.integers(0, TOTAL_ROWS, 4)].astype(np.float64)
        baseline = single_node.query(queries)

        outcomes = []
        errors = []
        stop = threading.Event()

        def hammer():
            with ServeClient(port=port, timeout=30.0, retries=8) as c:
                while not stop.is_set():
                    try:
                        outcomes.append(c.query(queries))
                    except Exception as exc:  # noqa: BLE001 - recorded
                        errors.append(repr(exc))

        worker = threading.Thread(target=hammer)
        worker.start()
        try:
            # Let a few batches through, then drop a replica mid-stream.
            import time

            time.sleep(0.3)
            supervisor.kill_replica(0, 0)
            time.sleep(1.0)
        finally:
            stop.set()
            worker.join()

        assert not errors, errors
        assert len(outcomes) >= 2
        for got in outcomes:
            _assert_results_equal(baseline, got)
        # The kill actually happened and was routed around.
        assert not supervisor._handle(0, 0).alive
        stats = self._stats(port)
        failovers = sum(
            s["failovers"] for s in stats["cluster"]["per_shard"]
        )
        assert failovers >= 1

    @staticmethod
    def _stats(port):
        with ServeClient(port=port, timeout=30.0) as client:
            return client.stats()


class TestIngestRouting:
    @pytest.fixture()
    def routed_rw(self, tmp_path_factory, source):
        cluster_dir = tmp_path_factory.mktemp("ingest") / "c"
        plan_cluster(source, cluster_dir, num_shards=2, replicas=2)
        supervisor = ClusterSupervisor(
            cluster_dir,
            mode="thread",
            serve_config=ServeConfig(port=0, alpha=ALPHA),
        ).start()
        router = ClusterRouter(
            ClusterManifest.load(cluster_dir),
            supervisor.endpoints(),
            RouterConfig(port=0, alpha=ALPHA),
        )
        thread = ServiceThread(router).start()
        client = ServeClient(port=thread.port, timeout=30.0)
        yield client
        client.close()
        thread.stop()
        supervisor.stop()

    def test_ingest_routes_dedupes_and_reads_back(self, routed_rw):
        rng = np.random.default_rng(31)
        new = rng.integers(0, 256, size=(6, NDIMS), dtype=np.uint8)
        ids = (np.arange(6) + 500).astype(np.int64)
        tcs = np.linspace(0, 5, 6)
        first = routed_rw.ingest(
            new.astype(np.float64), ids, tcs, request_id="ingest-once"
        )
        assert first["added"] == 6
        assert sum(s["rows"] for s in first["shards"]) == 6
        # Every owning shard acked on at least one replica.
        assert all(s["acks"] >= 1 for s in first["shards"])
        # Same request_id again: shard-side dedupe absorbs the replay
        # (the router response shape is identical; no rows re-applied).
        second = routed_rw.ingest(
            new.astype(np.float64), ids, tcs, request_id="ingest-once"
        )
        assert [s["rows"] for s in second["shards"]] == [
            s["rows"] for s in first["shards"]
        ]
        results = routed_rw.query(new.astype(np.float64))
        for row_ids, result in zip(ids, results):
            assert row_ids in result.ids
        stats = routed_rw.stats()
        # The written shards are now dirty: excluded from skipping.
        assert stats["cluster"]["dirty_shards"]
        assert stats["cluster"]["ingest_rows"] == 12
