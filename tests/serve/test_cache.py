"""Serve-path cache semantics: LRU, tokens, dedupe, bit-identity.

The system invariant under test: with every cache layer on, each served
answer is **bit-identical** to a cold solo ``statistical_query`` against
the index state at serve time — across LRU hits, in-flight follower
shares, gather-cache replays and ingest invalidation.  Hypothesis
drives random interleavings of queries and ingests through a cached
micro-batcher over a live segmented index.
"""

import asyncio
import tempfile
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distortion.model import NormalDistortionModel
from repro.errors import ConfigurationError
from repro.index.batch import BatchQueryExecutor
from repro.index.s3 import S3Index
from repro.index.segmented import SegmentedS3Index
from repro.index.store import FingerprintStore
from repro.serve.batcher import BatcherConfig, MicroBatcher
from repro.serve.cache import (
    CacheStats,
    GatherCache,
    QueryResultCache,
    ServeCache,
    index_cache_token,
)

NDIMS = 8
ALPHA = 0.8
SIGMA = 10.0


def make_store(n, seed=0):
    rng = np.random.default_rng(seed)
    fp = rng.integers(0, 256, size=(n, NDIMS)).astype(np.uint8)
    return FingerprintStore(
        fp, rng.integers(0, 5, n).astype(np.uint32), rng.uniform(0, 100, n)
    )


@pytest.fixture(scope="module")
def index():
    return S3Index(
        make_store(600), model=NormalDistortionModel(NDIMS, SIGMA)
    )


def run(coro):
    return asyncio.run(coro)


def solo(index, fingerprint):
    index.reset_threshold_cache()
    return index.statistical_query(fingerprint, ALPHA)


def assert_same(result, expected):
    assert np.array_equal(result.rows, expected.rows)
    assert np.array_equal(result.ids, expected.ids)
    assert np.array_equal(result.timecodes, expected.timecodes)
    assert np.array_equal(result.fingerprints, expected.fingerprints)


# ----------------------------------------------------------------------
class TestQueryResultCache:
    def test_lru_evicts_oldest(self):
        cache = QueryResultCache(capacity=2, token=None)
        cache.put("a", 1, None)
        cache.put("b", 2, None)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3, None)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_counters(self):
        cache = QueryResultCache(capacity=4, token=None)
        assert cache.get("missing") is None
        cache.put("k", "v", None)
        assert cache.get("k") == "v"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_put_with_stale_token_is_dropped(self):
        cache = QueryResultCache(capacity=4, token=("gen", 2))
        cache.put("k", "v", ("gen", 1))  # computed before a mutation
        assert len(cache) == 0
        assert cache.stats.stale_drops == 1
        cache.put("k", "v", ("gen", 2))
        assert cache.get("k") == "v"

    def test_invalidate_clears_and_adopts_token(self):
        cache = QueryResultCache(capacity=4, token=("gen", 1))
        cache.put("k", "v", ("gen", 1))
        cache.invalidate(("gen", 2))
        assert len(cache) == 0
        assert cache.token == ("gen", 2)
        assert cache.stats.invalidations == 1

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            QueryResultCache(capacity=0)


class TestGatherCache:
    def columns(self, rows):
        return (
            np.arange(rows, dtype=np.uint32),
            np.arange(rows, dtype=np.float64),
            np.zeros((rows, NDIMS), dtype=np.uint8),
        )

    def test_round_trip(self):
        cache = GatherCache(capacity_rows=1000)
        union = [(0, 10), (20, 30)]
        cache.put("seg-000001", union, self.columns(20), 20)
        hit = cache.get("seg-000001", union)
        assert hit is not None
        assert cache.get("seg-000001", [(0, 10)]) is None
        assert cache.get("seg-000002", union) is None
        assert cache.hits == 1 and cache.misses == 2

    def test_oversized_unions_never_cached(self):
        cache = GatherCache(capacity_rows=1000)
        big = 1000 // 4 + 1
        cache.put("s", [(0, big)], self.columns(big), big)
        assert len(cache) == 0

    def test_rows_budget_evicts(self):
        cache = GatherCache(capacity_rows=1000)
        for i in range(6):
            cache.put(f"s{i}", [(0, 200)], self.columns(200), 200)
        assert cache.rows_cached <= 1000
        assert cache.evictions >= 1

    def test_clear(self):
        cache = GatherCache(capacity_rows=1000)
        cache.put("s", [(0, 10)], self.columns(10), 10)
        cache.clear()
        assert len(cache) == 0 and cache.rows_cached == 0

    def test_rejects_negative_budget(self):
        with pytest.raises(ConfigurationError):
            GatherCache(capacity_rows=-1)


class TestIndexCacheToken:
    def test_monolithic_token_reflects_model_and_rows(self, index):
        token = index_cache_token(index)
        assert token == index_cache_token(index)  # stable
        other = S3Index(
            make_store(600), model=NormalDistortionModel(NDIMS, 2 * SIGMA)
        )
        assert index_cache_token(other) != token

    def test_segmented_token_changes_on_ingest(self, tmp_path):
        store = make_store(200, seed=1)
        with SegmentedS3Index.create(
            tmp_path / "seg", ndims=NDIMS,
            model=NormalDistortionModel(NDIMS, SIGMA),
        ) as seg:
            seg.add(store.fingerprints, store.ids, store.timecodes)
            before = index_cache_token(seg)
            extra = make_store(50, seed=2)
            seg.add(extra.fingerprints, extra.ids, extra.timecodes)
            after = index_cache_token(seg)
            assert before != after
            seg.flush()
            assert index_cache_token(seg) != after


class TestServeCache:
    def test_result_key_uses_bytes_not_identity(self):
        fp = np.arange(NDIMS, dtype=np.float64)
        key1 = ServeCache.result_key(fp, ALPHA, 10)
        key2 = ServeCache.result_key(fp.copy(), ALPHA, 10)
        assert key1 == key2
        assert ServeCache.result_key(fp, ALPHA, 11) != key1
        # Non-contiguous views key by their logical content.
        wide = np.zeros((2, 2 * NDIMS))
        wide[0, ::2] = fp
        assert ServeCache.result_key(wide[0, ::2], ALPHA, 10) == key1

    def test_inflight_cleanup(self):
        async def scenario():
            cache = ServeCache(token=None)
            fut = asyncio.get_running_loop().create_future()
            cache.register_inflight("k", fut)
            assert cache.leader("k") is fut
            fut.set_result("done")
            await asyncio.sleep(0)  # run the done callback
            assert cache.leader("k") is None
            assert "k" not in cache.inflight

        run(scenario())

    def test_invalidate_clears_everything(self):
        cache = ServeCache(token=("t", 1))
        cache.results.put("k", "v", ("t", 1))
        cache.gather.put("s", [(0, 10)], (None, None, None), 10)
        cache.invalidate(("t", 2))
        assert len(cache.results) == 0
        assert len(cache.gather) == 0
        assert cache.results.token == ("t", 2)

    def test_snapshot_shape(self):
        snap = ServeCache(token=None).snapshot()
        for key in ("enabled", "hits", "misses", "hit_rate", "entries",
                    "capacity", "inflight", "gather"):
            assert key in snap

    def test_stats_shared_with_results(self):
        stats = CacheStats()
        cache = ServeCache(token=None)
        assert cache.results.stats is cache.stats
        assert stats.hit_rate == 0.0  # empty stays total


# ----------------------------------------------------------------------
def make_cached_batcher(index, engine, **config):
    executor = BatchQueryExecutor(
        index, ALPHA, batch_size=config.get("max_batch", 32)
    )
    cache = ServeCache(token=index_cache_token(index))
    executor.gather_cache = cache.gather
    batcher = MicroBatcher(
        executor, engine, BatcherConfig(**config), cache=cache
    )
    return batcher, cache


class TestCachedBatcher:
    def test_repeat_query_served_from_cache(self, index):
        query = index.store.fingerprints[0].astype(np.float64)

        async def scenario():
            with ThreadPoolExecutor(max_workers=1) as engine:
                batcher, cache = make_cached_batcher(index, engine)
                batcher.start()
                (first,) = await batcher.submit_many(query)
                (second,) = await batcher.submit_many(query)
                await batcher.drain_and_stop()
                return first, second, cache, batcher.stats

        first, second, cache, stats = run(scenario())
        assert cache.stats.hits >= 1
        assert stats.batches == 1  # the repeat never reached the engine
        expected = solo(index, query)
        assert_same(first, expected)
        assert_same(second, expected)

    def test_concurrent_identical_queries_execute_once(self, index):
        query = index.store.fingerprints[1].astype(np.float64)

        async def scenario():
            with ThreadPoolExecutor(max_workers=1) as engine:
                batcher, cache = make_cached_batcher(
                    index, engine, max_batch=8, max_wait_ms=50.0
                )
                batcher.start()
                tasks = [
                    asyncio.ensure_future(batcher.submit_many(query))
                    for _ in range(4)
                ]
                nested = await asyncio.gather(*tasks)
                await batcher.drain_and_stop()
                return nested, cache, batcher.stats

        nested, cache, stats = run(scenario())
        assert cache.stats.inflight_deduped >= 1
        assert stats.batches == 1
        expected = solo(index, query)
        for (result,) in nested:
            assert_same(result, expected)

    def test_duplicates_inside_one_request_dedupe(self, index):
        query = index.store.fingerprints[2].astype(np.float64)
        batch = np.stack([query, query, query])

        async def scenario():
            with ThreadPoolExecutor(max_workers=1) as engine:
                batcher, cache = make_cached_batcher(index, engine)
                batcher.start()
                results = await batcher.submit_many(batch)
                await batcher.drain_and_stop()
                return results, cache

        results, cache = run(scenario())
        assert cache.stats.inflight_deduped >= 2
        expected = solo(index, query)
        for result in results:
            assert_same(result, expected)

    def test_cache_off_unaffected(self, index):
        # The uncached construction (no cache kwarg) still works and
        # never touches a cache.
        query = index.store.fingerprints[3].astype(np.float64)

        async def scenario():
            with ThreadPoolExecutor(max_workers=1) as engine:
                executor = BatchQueryExecutor(index, ALPHA)
                batcher = MicroBatcher(executor, engine, BatcherConfig())
                batcher.start()
                (first,) = await batcher.submit_many(query)
                (second,) = await batcher.submit_many(query)
                await batcher.drain_and_stop()
                return first, second, batcher.stats

        first, second, stats = run(scenario())
        assert stats.batches == 2
        assert_same(first, solo(index, query))
        assert_same(second, solo(index, query))


# ----------------------------------------------------------------------
class TestIngestInvalidation:
    @settings(deadline=None, max_examples=10)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("query"), st.integers(0, 15)),
                st.tuples(st.just("ingest"), st.integers(1, 40)),
            ),
            min_size=2, max_size=10,
        ),
        seed=st.integers(0, 2**16),
    )
    def test_bit_identity_across_invalidation(self, ops, seed):
        """Cached answers always match the index state at serve time.

        Random interleavings of repeat-heavy queries and ingests run
        through a cached micro-batcher over a live segmented index;
        after every ingest the cache is invalidated exactly the way the
        server does it.  Every served result must equal a cold solo
        query against the index as it stood when the result was served.
        """
        rng = np.random.default_rng(seed)
        base = make_store(120, seed=seed)
        pool = np.clip(
            base.fingerprints[:16].astype(np.float64)
            + rng.normal(0, 2, (16, NDIMS)),
            0, 255,
        )

        async def scenario(seg):
            with ThreadPoolExecutor(max_workers=1) as engine:
                batcher, cache = make_cached_batcher(
                    seg, engine, max_batch=8, max_wait_ms=0.0
                )
                batcher.start()
                for op, arg in ops:
                    if op == "ingest":
                        extra = make_store(arg, seed=arg)
                        seg.add(
                            extra.fingerprints, extra.ids, extra.timecodes
                        )
                        cache.invalidate(index_cache_token(seg))
                        continue
                    (result,) = await batcher.submit_many(pool[arg])
                    expected = solo(seg, pool[arg])
                    assert_same(result, expected)
                await batcher.drain_and_stop()

        with tempfile.TemporaryDirectory() as tmp:
            with SegmentedS3Index.create(
                f"{tmp}/seg", ndims=NDIMS,
                model=NormalDistortionModel(NDIMS, SIGMA),
                flush_rows=64,
            ) as seg:
                seg.add(base.fingerprints, base.ids, base.timecodes)
                run(scenario(seg))
