"""Serving a tiered index: bit-identity over the wire + degradation.

The satellite contract: a cold-fetch failure surfaces as the retryable
``unavailable`` wire code — never a crash, never a silent wrong answer
— and the default client's retry loop rides through transient backend
faults transparently.
"""

import numpy as np
import pytest

from repro.distortion.model import NormalDistortionModel
from repro.index.segmented import SegmentedS3Index
from repro.serve import ServeClient, ServeConfig, ServerThread, protocol
from repro.serve.client import ServerError
from repro.storage import FakeBlobBackend, StorageConfig

NDIMS = 8
SIGMA = 20.0


@pytest.fixture
def archive(tmp_path):
    rng = np.random.default_rng(1)
    index = SegmentedS3Index.create(
        tmp_path / "srv", ndims=NDIMS,
        model=NormalDistortionModel(NDIMS, SIGMA),
        flush_rows=10 ** 9, auto_compact=False,
    )
    for i in range(3):
        fps = rng.integers(0, 256, size=(400, NDIMS), dtype=np.uint8)
        index.add(fps, np.full(400, i, dtype=np.uint32),
                  np.arange(400, dtype=np.float64))
        index.flush()
    index.close()
    return tmp_path / "srv"


def reference_query(archive):
    with SegmentedS3Index.open(archive) as ref:
        fp, _id, _tc = ref.record(7)
        q = fp[None, :].astype(np.float64)
        res = ref.statistical_query(fp.astype(np.float64), alpha=0.8)
    return q, res


class TestTieredServe:
    def test_wire_results_match_all_ram(self, archive):
        q, ref = reference_query(archive)
        backend = FakeBlobBackend()
        index = SegmentedS3Index.open(
            archive,
            storage=StorageConfig(budget_bytes=1, backend=backend),
        )
        assert all(s.meta.tier == "cold" for s in index._segments)
        with ServerThread(index, ServeConfig(port=0, cache="off")) as srv:
            with ServeClient(port=srv.port) as client:
                got = client.query(q)[0]
        assert np.array_equal(np.sort(got.rows), np.sort(ref.rows))
        assert np.array_equal(np.sort(got.ids), np.sort(ref.ids))
        assert np.array_equal(
            np.sort(got.timecodes), np.sort(ref.timecodes)
        )

    def test_cold_fetch_failure_is_retryable_unavailable(self, archive):
        q, ref = reference_query(archive)
        backend = FakeBlobBackend()
        index = SegmentedS3Index.open(
            archive,
            storage=StorageConfig(budget_bytes=1, backend=backend),
        )
        config = ServeConfig(port=0, cache="off", storage_budget=1)
        with ServerThread(index, config) as srv:
            # Raw view with retries disabled: the wire code must be the
            # retryable ``unavailable``, per the serve contract.
            backend.fail_reads = 1
            with ServeClient(port=srv.port, retries=0) as raw:
                with pytest.raises(ServerError) as err:
                    raw.query(q)
            assert err.value.code == protocol.ERR_UNAVAILABLE
            assert err.value.code in protocol.RETRYABLE_CODES

            # Default client: transparent recovery once the fault
            # budget is spent.  No crash, no wrong answer.
            backend.fail_reads = 2
            with ServeClient(port=srv.port) as client:
                got = client.query(q)[0]
                assert np.array_equal(np.sort(got.ids), np.sort(ref.ids))

                stats = client.stats()
            assert stats["errors"].get(protocol.ERR_UNAVAILABLE, 0) >= 3
            storage = stats["storage"]
            assert storage["tiered"]
            assert storage["tiers"]["cold"]["segments"] == 3
            assert storage["manager"]["counters"]["cold_errors"] >= 3
            assert stats["config"]["storage_budget"] == 1

    def test_health_reports_tiers(self, archive):
        backend = FakeBlobBackend()
        index = SegmentedS3Index.open(
            archive,
            storage=StorageConfig(budget_bytes=None, backend=backend),
        )
        with ServerThread(index, ServeConfig(port=0)) as srv:
            with ServeClient(port=srv.port) as client:
                health = client.health()
        summary = health["index"]
        assert summary["storage"]["tiered"]
        assert {s["tier"] for s in summary["segments"]} == {"hot"}
