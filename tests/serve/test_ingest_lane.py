"""Serve-side ingest pipeline: durability config, backpressure over the
wire, gather retention across memtable-only ingests.

The serving contract for the pipelined write path:

* ``ServeConfig`` validates durability/maintenance knobs with friendly
  messages, mirroring the CLI;
* an ingest refused by backpressure surfaces as the retryable
  ``unavailable`` wire code — the write never touched the WAL, so a
  capped-backoff retry is safe;
* a memtable-only ingest invalidates query results but keeps the
  gather layer (sealed stores are untouched); a compaction clears it;
* ``serve stats`` exposes the ingest-pressure block and the
  engine-lane stall histogram.
"""

import numpy as np
import pytest

from repro.distortion.model import NormalDistortionModel
from repro.errors import ConfigurationError
from repro.index.segmented import SegmentedS3Index
from repro.index.store import FingerprintStore
from repro.serve import ServeClient, ServeConfig, ServerError, ServerThread
from repro.serve import protocol
from repro.serve.cache import ServeCache

NDIMS = 8
SIGMA = 10.0


def make_records(n, seed=0):
    rng = np.random.default_rng(seed)
    fp = rng.integers(0, 256, size=(n, NDIMS)).astype(np.uint8)
    ids = rng.integers(0, 50, n).astype(np.uint32)
    tcs = rng.uniform(0, 500, n)
    return fp, ids, tcs


def make_index(tmp_path, **kwargs):
    kwargs.setdefault("flush_rows", 10 ** 9)
    kwargs.setdefault("auto_compact", False)
    kwargs.setdefault("durability", "async")
    index = SegmentedS3Index.create(
        tmp_path / "live", ndims=NDIMS,
        model=NormalDistortionModel(NDIMS, SIGMA), **kwargs,
    )
    index.add(*make_records(300, seed=0))
    return index


class TestServeConfigValidation:
    def test_bad_durability_is_friendly(self):
        with pytest.raises(ConfigurationError) as exc:
            ServeConfig(durability="fsync-sometimes")
        message = str(exc.value)
        assert "ServeConfig.durability" in message
        assert "group" in message  # the valid modes are spelled out

    def test_bad_maintenance_knobs(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(backpressure_rows=0)
        with pytest.raises(ConfigurationError):
            ServeConfig(compact_mb_per_s=0.0)
        with pytest.raises(ConfigurationError):
            ServeConfig(ingest_workers=0)

    def test_maintenance_config_carries_knobs(self):
        config = ServeConfig(backpressure_rows=77, compact_mb_per_s=1.5)
        mc = config.maintenance_config()
        assert mc.backpressure_rows == 77
        assert mc.compact_mb_per_s == 1.5


class TestBackpressureOverTheWire:
    def test_shed_is_retryable_unavailable(self, tmp_path):
        index = make_index(tmp_path)
        config = ServeConfig(
            port=0, cache="off", backpressure_rows=350,
        )
        with ServerThread(index, config) as server:
            with ServeClient(port=server.port, retries=0) as client:
                # First ingest is under the limit and lands durably.
                reply = client.ingest(*make_records(100, seed=1))
                assert reply["added"] == 100
                # Pending rows (300 seeded + 100) now exceed the limit:
                # the next write is refused before touching the WAL.
                with pytest.raises(ServerError) as err:
                    client.ingest(*make_records(10, seed=2))
                assert err.value.code == protocol.ERR_UNAVAILABLE
                assert err.value.code in protocol.RETRYABLE_CODES

                # The shed requested a background seal; once the worker
                # drains, ingest resumes without losing anything.
                assert index.maintenance is not None
                assert index.maintenance.drain()
                reply = client.ingest(*make_records(10, seed=2))
                assert reply["added"] == 10

                stats = client.stats()
            ingest = stats["ingest"]
            assert ingest["writable"]
            assert ingest["backpressure_sheds"] >= 1
            assert ingest["maintenance"]["seals"] >= 1
            assert stats["config"]["durability"] == "async"
            assert "engine_stall" in stats["batcher"]

    def test_no_maintenance_mode_seals_inline(self, tmp_path):
        index = make_index(tmp_path, flush_rows=200)
        config = ServeConfig(port=0, cache="off", maintenance=False)
        with ServerThread(index, config) as server:
            with ServeClient(port=server.port) as client:
                client.ingest(*make_records(250, seed=3))
                stats = client.stats()
            assert stats["ingest"]["maintenance"] is None
            # The inline seal ran on the ingest path, as before the
            # pipelined write path existed.
            assert stats["ingest"]["memtable_rows"] < 300
        assert index.num_segments >= 1


class TestGatherRetention:
    def put_one_gather(self, cache):
        columns = (
            np.arange(4, dtype=np.uint32),
            np.arange(4, dtype=np.float64),
            np.zeros((4, NDIMS), dtype=np.uint8),
        )
        cache.gather.put("seg-000001", ((0, 4),), columns, 4)

    def test_memtable_only_ingest_keeps_gathers(self):
        cache = ServeCache(token=("a",))
        cache.results.put("k", "v", ("a",))
        self.put_one_gather(cache)
        cache.invalidate(("b",), keep_gathers=True)
        # Results must go (the answer set changed)...
        assert cache.results.get("k") is None
        # ...but the sealed-store gather survives untouched.
        assert cache.gather.get("seg-000001", ((0, 4),)) is not None

    def test_compaction_clears_gathers(self):
        cache = ServeCache(token=("a",))
        self.put_one_gather(cache)
        cache.invalidate(("b",))
        assert cache.gather.get("seg-000001", ((0, 4),)) is None

    def test_served_results_exact_across_memtable_ingest(self, tmp_path):
        """End to end: cache on, ingest, repeat query — still exact."""
        index = make_index(tmp_path)
        store = FingerprintStore(*make_records(300, seed=0))
        query = store.fingerprints[7].astype(np.float64)
        config = ServeConfig(port=0, cache="on")
        with ServerThread(index, config) as server:
            with ServeClient(port=server.port) as client:
                before = client.query(query)[0]
                client.ingest(*make_records(50, seed=9))
                after = client.query(query)[0]
                stats = client.stats()
        # The pre-ingest rows still match identically (the ingest only
        # appended); the cached gather layer was retained.
        assert set(zip(before.ids, before.timecodes)) <= set(
            zip(after.ids, after.timecodes)
        )
        assert stats["cache"]["invalidations"] >= 1
