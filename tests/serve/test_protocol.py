"""Framing and wire-conversion tests for :mod:`repro.serve.protocol`.

The service's equivalence guarantee needs exact float64 round-trips
through JSON — tested here against adversarial values — plus robust
behaviour on truncated, oversized and garbage frames.
"""

import asyncio
import socket
import struct

import numpy as np
import pytest

from repro.serve import protocol
from repro.serve.protocol import ProtocolError


def frame_roundtrip(message, max_frame=protocol.MAX_FRAME_BYTES):
    a, b = socket.socketpair()
    try:
        protocol.send_message(a, message)
        return protocol.recv_message(b, max_frame)
    finally:
        a.close()
        b.close()


class TestFraming:
    def test_roundtrip(self):
        message = {"op": "query", "id": 7, "fingerprints": [[1.0, 2.5]]}
        assert frame_roundtrip(message) == message

    def test_multiple_frames_on_one_socket(self):
        a, b = socket.socketpair()
        try:
            for i in range(3):
                protocol.send_message(a, {"id": i})
            for i in range(3):
                assert protocol.recv_message(b)["id"] == i
        finally:
            a.close()
            b.close()

    def test_oversized_incoming_frame_refused(self):
        a, b = socket.socketpair()
        try:
            protocol.send_message(a, {"pad": "x" * 2048})
            with pytest.raises(ProtocolError, match="exceeds"):
                protocol.recv_message(b, max_frame=64)
        finally:
            a.close()
            b.close()

    def test_truncated_frame_raises(self):
        a, b = socket.socketpair()
        try:
            frame = protocol.encode_frame({"op": "stats"})
            a.sendall(frame[: len(frame) - 3])
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                protocol.recv_message(b)
        finally:
            b.close()

    def test_non_object_payload_refused(self):
        a, b = socket.socketpair()
        try:
            payload = b"[1,2,3]"
            a.sendall(struct.pack("!I", len(payload)) + payload)
            with pytest.raises(ProtocolError, match="JSON object"):
                protocol.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_garbage_payload_refused(self):
        a, b = socket.socketpair()
        try:
            payload = b"\xff\xfe not json"
            a.sendall(struct.pack("!I", len(payload)) + payload)
            with pytest.raises(ProtocolError, match="not valid JSON"):
                protocol.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_async_reader_clean_eof_returns_none(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            return await protocol.read_message(reader)

        assert asyncio.run(scenario()) is None

    def test_async_reader_roundtrip_and_truncation(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(protocol.encode_frame({"op": "health"}))
            first = await protocol.read_message(reader)
            frame = protocol.encode_frame({"op": "stats"})
            reader.feed_data(frame[:-1])
            reader.feed_eof()
            with pytest.raises(ProtocolError, match="mid-frame"):
                await protocol.read_message(reader)
            return first

        assert asyncio.run(scenario()) == {"op": "health"}


class TestWireConversions:
    def test_float64_exact_roundtrip(self):
        rng = np.random.default_rng(0)
        # Adversarial float64s: tiny, huge, denormal-adjacent, negative.
        values = np.concatenate([
            rng.uniform(0, 255, 64),
            np.array([0.1, 1 / 3, np.pi, 2.0 ** -40, 1e300, -1e-300]),
        ])[None, :]
        wire = protocol.fingerprints_to_wire(values)
        back = protocol.fingerprints_from_wire(
            frame_roundtrip({"fingerprints": wire})["fingerprints"],
            values.shape[1],
        )
        assert np.array_equal(back, values)

    def test_fingerprints_from_wire_validates_shape(self):
        with pytest.raises(ProtocolError, match=r"\(B, 4\)"):
            protocol.fingerprints_from_wire([[1.0, 2.0]], 4)
        with pytest.raises(ProtocolError, match="not numeric"):
            protocol.fingerprints_from_wire([["a", "b"]], 2)

    def test_single_vector_promoted(self):
        arr = protocol.fingerprints_from_wire([1.0, 2.0, 3.0], 3)
        assert arr.shape == (1, 3)

    def test_oversized_outgoing_frame_refused(self):
        huge = {"pad": "x" * (protocol.MAX_FRAME_BYTES + 1)}
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.encode_frame(huge)
