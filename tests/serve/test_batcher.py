"""Micro-batcher semantics: sharing, admission, deadlines, drain."""

import asyncio
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.distortion.model import NormalDistortionModel
from repro.errors import ConfigurationError
from repro.index.batch import BatchQueryExecutor
from repro.index.s3 import S3Index
from repro.index.store import FingerprintStore
from repro.serve.batcher import (
    BatcherConfig,
    DeadlineExceeded,
    MicroBatcher,
    ServiceClosed,
    ServiceOverloaded,
)

NDIMS = 8
ALPHA = 0.8


@pytest.fixture(scope="module")
def index():
    rng = np.random.default_rng(0)
    fp = rng.integers(0, 256, size=(600, NDIMS)).astype(np.uint8)
    store = FingerprintStore(
        fp, rng.integers(0, 5, 600).astype(np.uint32),
        rng.uniform(0, 100, 600),
    )
    return S3Index(store, model=NormalDistortionModel(NDIMS, 10.0))


def make_batcher(index, engine, **config):
    executor = BatchQueryExecutor(
        index, ALPHA, batch_size=config.get("max_batch", 32)
    )
    return MicroBatcher(executor, engine, BatcherConfig(**config))


def run(coro):
    return asyncio.run(coro)


def solo(index, fingerprint):
    index.reset_threshold_cache()
    return index.statistical_query(fingerprint, ALPHA)


class TestBatching:
    def test_concurrent_submissions_share_batches(self, index):
        queries = index.store.fingerprints[:12].astype(np.float64)

        async def scenario():
            with ThreadPoolExecutor(max_workers=1) as engine:
                batcher = make_batcher(
                    index, engine, max_batch=64, max_wait_ms=100.0
                )
                batcher.start()
                tasks = [
                    asyncio.ensure_future(
                        batcher.submit_many(queries[i:i + 2])
                    )
                    for i in range(0, 12, 2)
                ]
                nested = await asyncio.gather(*tasks)
                await batcher.drain_and_stop()
                return [r for pair in nested for r in pair], batcher.stats

        results, stats = run(scenario())
        assert stats.queries == 12
        # All six submissions landed inside one 100 ms window.
        assert stats.batches < 6
        assert stats.mean_fill > 1.0
        for i, result in enumerate(results):
            expected = solo(index, queries[i])
            assert np.array_equal(result.rows, expected.rows)
            assert np.array_equal(result.ids, expected.ids)
            assert np.array_equal(result.timecodes, expected.timecodes)
            assert np.array_equal(
                result.fingerprints, expected.fingerprints
            )

    def test_zero_wait_still_answers(self, index):
        query = index.store.fingerprints[0].astype(np.float64)

        async def scenario():
            with ThreadPoolExecutor(max_workers=1) as engine:
                batcher = make_batcher(
                    index, engine, max_batch=8, max_wait_ms=0.0
                )
                batcher.start()
                results = await batcher.submit_many(query)
                await batcher.drain_and_stop()
                return results

        (result,) = run(scenario())
        expected = solo(index, query)
        assert np.array_equal(result.rows, expected.rows)


class TestAdmission:
    def test_overflow_is_shed_all_or_nothing(self, index):
        queries = index.store.fingerprints[:3].astype(np.float64)

        async def scenario():
            with ThreadPoolExecutor(max_workers=1) as engine:
                batcher = make_batcher(index, engine, queue_limit=2)
                batcher.start()
                with pytest.raises(ServiceOverloaded):
                    await batcher.submit_many(queries)
                shed = batcher.stats.shed
                await batcher.drain_and_stop()
                return shed, batcher.stats.queries

        shed, queries_run = run(scenario())
        assert shed == 3
        assert queries_run == 0  # nothing was partially admitted

    def test_closed_rejects(self, index):
        query = index.store.fingerprints[0].astype(np.float64)

        async def scenario():
            with ThreadPoolExecutor(max_workers=1) as engine:
                batcher = make_batcher(index, engine)
                batcher.start()
                await batcher.drain_and_stop()
                with pytest.raises(ServiceClosed):
                    await batcher.submit_many(query)

        run(scenario())


class TestDeadlines:
    def test_expired_while_queued(self, index):
        query = index.store.fingerprints[0].astype(np.float64)

        async def scenario():
            with ThreadPoolExecutor(max_workers=1) as engine:
                batcher = make_batcher(
                    index, engine, max_batch=8, max_wait_ms=30.0
                )
                batcher.start()
                deadline = asyncio.get_running_loop().time() + 1e-4
                with pytest.raises(DeadlineExceeded):
                    await batcher.submit_many(query, deadline=deadline)
                expired = batcher.stats.expired
                await batcher.drain_and_stop()
                return expired

        assert run(scenario()) == 1


class TestDrain:
    def test_drain_runs_queued_items(self, index):
        queries = index.store.fingerprints[:5].astype(np.float64)

        async def scenario():
            with ThreadPoolExecutor(max_workers=1) as engine:
                # A long window: without the stop sentinel the first
                # batch would sit collecting for 5 s.
                batcher = make_batcher(
                    index, engine, max_batch=2, max_wait_ms=5000.0
                )
                batcher.start()
                task = asyncio.ensure_future(batcher.submit_many(queries))
                await asyncio.sleep(0)  # let the task enqueue
                t0 = asyncio.get_running_loop().time()
                await batcher.drain_and_stop()
                elapsed = asyncio.get_running_loop().time() - t0
                return await task, elapsed, batcher.stats

        results, elapsed, stats = run(scenario())
        assert len(results) == 5
        assert stats.queries == 5
        assert elapsed < 2.0  # drained, not waited out
        for i, result in enumerate(results):
            expected = solo(index, queries[i])
            assert np.array_equal(result.rows, expected.rows)


class TestConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            BatcherConfig(max_batch=0)
        with pytest.raises(ConfigurationError):
            BatcherConfig(max_wait_ms=-1.0)
        with pytest.raises(ConfigurationError):
            BatcherConfig(queue_limit=-1)
