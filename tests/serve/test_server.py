"""Service-level tests: wire equivalence, shedding, graceful drain.

The acceptance property: K concurrent clients querying over a socket
receive results **bit-identical** to K solo in-process
``statistical_query`` calls in deterministic mode — against both the
monolithic and the segmented index.
"""

import threading

import numpy as np
import pytest

from repro.distortion.model import NormalDistortionModel
from repro.index.s3 import S3Index
from repro.index.segmented import SegmentedS3Index
from repro.index.store import FingerprintStore
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServerError,
    ServerThread,
    ServiceUnavailable,
)

NDIMS = 8
ALPHA = 0.8
SIGMA = 10.0
NUM_CLIENTS = 8
QUERIES_PER_CLIENT = 6


def make_store(n, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.integers(40, 216, size=(8, NDIMS))
    assign = rng.integers(0, 8, size=n)
    fp = np.clip(
        centers[assign] + rng.normal(0, 10, (n, NDIMS)), 0, 255
    ).astype(np.uint8)
    return FingerprintStore(
        fp, rng.integers(0, 5, n).astype(np.uint32), rng.uniform(0, 100, n)
    )


@pytest.fixture(scope="module")
def store():
    return make_store(900)


def make_index(kind, store, tmp_path):
    model = NormalDistortionModel(NDIMS, SIGMA)
    if kind == "monolithic":
        return S3Index(store, model=model)
    index = SegmentedS3Index.create(
        tmp_path / "live", ndims=NDIMS, model=model, flush_rows=400
    )
    index.add(store.fingerprints, store.ids, store.timecodes)
    return index


def client_queries(store, seed):
    """A client's workload: distorted copies of stored fingerprints."""
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, len(store), QUERIES_PER_CLIENT)
    return np.clip(
        store.fingerprints[rows].astype(np.float64)
        + rng.normal(0, SIGMA, (QUERIES_PER_CLIENT, NDIMS)),
        0, 255,
    )


@pytest.mark.parametrize("kind", ["monolithic", "segmented"])
class TestWireEquivalence:
    def test_concurrent_clients_bit_identical_to_solo(
        self, kind, store, tmp_path
    ):
        index = make_index(kind, store, tmp_path)
        workloads = [
            client_queries(store, seed) for seed in range(NUM_CLIENTS)
        ]
        served = [None] * NUM_CLIENTS
        errors = []

        config = ServeConfig(
            port=0, alpha=ALPHA, max_batch=64, max_wait_ms=5.0
        )
        with ServerThread(index, config) as server:
            def run_client(i):
                try:
                    with ServeClient(port=server.port) as client:
                        served[i] = [
                            client.query(q, include_fingerprints=True)[0]
                            for q in workloads[i]
                        ]
                except Exception as exc:  # surfaced after join
                    errors.append((i, exc))

            threads = [
                threading.Thread(target=run_client, args=(i,))
                for i in range(NUM_CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = server.server.stats_snapshot()

        assert not errors
        assert stats["batcher"]["queries"] == NUM_CLIENTS * QUERIES_PER_CLIENT
        for i, workload in enumerate(workloads):
            for j, query in enumerate(workload):
                index.reset_threshold_cache()
                expected = index.statistical_query(query, ALPHA)
                got = served[i][j]
                assert np.array_equal(got.rows, expected.rows)
                assert np.array_equal(got.ids, expected.ids)
                assert np.array_equal(got.timecodes, expected.timecodes)
                assert np.array_equal(
                    got.fingerprints, expected.fingerprints
                )


class TestOps:
    def test_health_stats_and_detect(self, store, tmp_path):
        index = make_index("monolithic", store, tmp_path)
        with ServerThread(index, ServeConfig(port=0, alpha=ALPHA)) as server:
            with ServeClient(port=server.port) as client:
                health = client.health()
                assert health["status"] == "ok"
                assert health["index"]["kind"] == "monolithic"
                assert health["index"]["rows"] == len(store)

                # A clip of consecutive referenced frames must be detected.
                rows = np.where(store.ids == store.ids[0])[0][:12]
                detections = client.detect(
                    store.fingerprints[rows].astype(np.float64),
                    store.timecodes[rows],
                    threshold=3,
                )
                assert any(
                    d["video_id"] == int(store.ids[0]) for d in detections
                )

                stats = client.stats()
                assert stats["requests"]["health"] == 1
                assert stats["requests"]["detect"] == 1
                assert stats["batcher"]["queries"] == len(rows)
                assert stats["latency"]["count"] >= 2

    def test_bad_requests_get_friendly_errors(self, store, tmp_path):
        index = make_index("monolithic", store, tmp_path)
        with ServerThread(index, ServeConfig(port=0, alpha=ALPHA)) as server:
            with ServeClient(port=server.port) as client:
                with pytest.raises(ServerError, match="alpha"):
                    client._request({
                        "op": "query", "alpha": 0.5,
                        "fingerprints": [[0.0] * NDIMS],
                    })
                with pytest.raises(ServerError, match="unknown op"):
                    client._request({"op": "nope"})
                with pytest.raises(ServerError) as err:
                    client.ingest(
                        np.zeros((1, NDIMS)), np.zeros(1), np.zeros(1)
                    )
                assert "segmented" in str(err.value)
                # The connection survives every error above.
                assert client.health()["status"] == "ok"


class TestLoadShedding:
    def test_full_queue_sheds_with_explicit_error(self, store, tmp_path):
        index = make_index("monolithic", store, tmp_path)
        config = ServeConfig(port=0, alpha=ALPHA, queue_limit=0)
        with ServerThread(index, config) as server:
            client = ServeClient(
                port=server.port, retry_overloaded=False, retries=0
            )
            with client:
                with pytest.raises(ServerError) as err:
                    client.query(store.fingerprints[0].astype(np.float64))
                assert err.value.code == "overloaded"
                stats = client.stats()
                assert stats["batcher"]["shed"] >= 1
                assert stats["errors"]["overloaded"] >= 1

    def test_deadline_exceeded_while_queued(self, store, tmp_path):
        index = make_index("monolithic", store, tmp_path)
        config = ServeConfig(
            port=0, alpha=ALPHA, max_batch=64, max_wait_ms=50.0
        )
        with ServerThread(index, config) as server:
            with ServeClient(port=server.port) as client:
                with pytest.raises(ServerError) as err:
                    client.query(
                        store.fingerprints[0].astype(np.float64),
                        deadline_ms=0.01,
                    )
                assert err.value.code == "deadline_exceeded"
                assert client.stats()["batcher"]["expired"] == 1


class TestGracefulShutdown:
    def test_drain_leaves_wal_replayable(self, store, tmp_path):
        index = make_index("segmented", store, tmp_path)
        extra = make_store(37, seed=99)
        with ServerThread(index, ServeConfig(port=0, alpha=ALPHA)) as server:
            with ServeClient(port=server.port) as client:
                reply = client.ingest(
                    extra.fingerprints, extra.ids, extra.timecodes
                )
                assert reply["added"] == len(extra)
                # Unsealed: these rows only exist in memtable + WAL.
                assert reply["pending_rows"] > 0
        # The context exit drained and closed the WAL; reopening must
        # replay every acknowledged ingest.
        reopened = SegmentedS3Index.open(tmp_path / "live")
        try:
            assert len(reopened) == len(store) + len(extra)
        finally:
            reopened.close()

    def test_stopped_server_refuses_connections(self, store, tmp_path):
        index = make_index("monolithic", store, tmp_path)
        with ServerThread(index, ServeConfig(port=0, alpha=ALPHA)) as server:
            port = server.port
        with pytest.raises(ServiceUnavailable):
            with ServeClient(port=port, retries=1, backoff=0.01) as client:
                client.health()


class TestClientRetries:
    def test_unreachable_raises_after_backoff(self):
        client = ServeClient(port=1, retries=2, backoff=0.01)
        with pytest.raises(ServiceUnavailable, match="3 attempt"):
            client.health()
