"""Protocol v3 surface: liveness vs readiness, ingest dedupe, retries.

``health`` must distinguish a process that is *up* (live) from one that
is *serving* (ready) — supervisors route on the difference.  And every
ingest carries a ``request_id`` the server remembers, so a retry after
a broken connection is acknowledged from the original apply instead of
double-ingesting.
"""

import asyncio

import numpy as np
import pytest

from repro.distortion.model import NormalDistortionModel
from repro.index.segmented import SegmentedS3Index
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServerThread,
)
from repro.serve import protocol
from repro.serve.server import DetectionServer

NDIMS = 8
SIGMA = 10.0


def make_index(tmp_path, rows=600):
    rng = np.random.default_rng(0)
    index = SegmentedS3Index.create(
        tmp_path / "live",
        ndims=NDIMS,
        model=NormalDistortionModel(NDIMS, SIGMA),
        flush_rows=300,
        auto_compact=False,
    )
    fp = rng.integers(0, 256, size=(rows, NDIMS), dtype=np.uint8)
    index.add(fp, rng.integers(0, 5, rows).astype(np.uint32),
              rng.uniform(0, 10, rows))
    index.flush()
    return index


class TestReadiness:
    def test_loading_before_start(self, tmp_path):
        """A bound-but-warming server is live yet not ready."""
        server = DetectionServer(make_index(tmp_path), ServeConfig(port=0))

        async def probe():
            health = await server._op_health({})
            work = await server._dispatch(
                {"op": "query", "v": protocol.PROTOCOL_VERSION,
                 "fingerprints": [[0.0] * NDIMS]}
            )
            return health, work

        health, work = asyncio.run(probe())
        assert health["live"] is True
        assert health["ready"] is False
        assert health["status"] == "loading"
        assert work["ok"] is False
        assert work["error"]["code"] == protocol.ERR_NOT_READY
        server.index.close()

    def test_ready_after_start(self, tmp_path):
        with ServerThread(make_index(tmp_path), ServeConfig(port=0)) as t:
            with ServeClient(port=t.port) as client:
                health = client.health()
                assert health["live"] is True
                assert health["ready"] is True
                assert health["status"] == "ok"
                assert client.stats()["ready"] is True

    def test_not_ready_is_retryable(self):
        assert protocol.ERR_NOT_READY in protocol.RETRYABLE_CODES
        assert protocol.ERR_UNAVAILABLE in protocol.RETRYABLE_CODES
        assert protocol.ERR_OVERLOADED in protocol.RETRYABLE_CODES


class TestIngestDedupe:
    def test_same_request_id_applies_once(self, tmp_path):
        rng = np.random.default_rng(1)
        fp = rng.integers(0, 256, size=(5, NDIMS), dtype=np.uint8)
        ids = np.arange(5) + 100
        tcs = np.zeros(5)
        with ServerThread(make_index(tmp_path), ServeConfig(port=0)) as t:
            with ServeClient(port=t.port) as client:
                first = client.ingest(fp, ids, tcs, request_id="r-1")
                again = client.ingest(fp, ids, tcs, request_id="r-1")
                assert "deduped" not in first
                assert again["deduped"] is True
                # Replay answered with the original counts: nothing new
                # was applied by the second call.
                assert again["rows"] == first["rows"]
                assert again["pending_rows"] == first["pending_rows"]
                stats = client.stats()
                assert stats["ingest_deduped"] == 1

    def test_distinct_request_ids_both_apply(self, tmp_path):
        rng = np.random.default_rng(2)
        fp = rng.integers(0, 256, size=(3, NDIMS), dtype=np.uint8)
        ids = np.arange(3)
        tcs = np.zeros(3)
        with ServerThread(make_index(tmp_path), ServeConfig(port=0)) as t:
            with ServeClient(port=t.port) as client:
                first = client.ingest(fp, ids, tcs)  # generated ids
                second = client.ingest(fp, ids, tcs)
                assert second["pending_rows"] == first["pending_rows"] + 3

    def test_invalid_request_id_rejected(self, tmp_path):
        with pytest.raises(protocol.ProtocolError, match="request_id"):
            protocol.request_dedupe_id({"request_id": 42})
        with pytest.raises(protocol.ProtocolError, match="request_id"):
            protocol.request_dedupe_id({"request_id": ""})
        with pytest.raises(protocol.ProtocolError, match="request_id"):
            protocol.request_dedupe_id(
                {"request_id": "x" * (protocol.MAX_REQUEST_ID_LEN + 1)}
            )
        assert protocol.request_dedupe_id({}) is None
        assert protocol.request_dedupe_id({"request_id": "ok"}) == "ok"

    def test_ingest_resend_gated_on_version(self):
        """The int form of ``idempotent`` compares against the
        negotiated version — a downgraded client loses ingest resends."""
        client = ServeClient(port=1)  # never connected
        assert client.protocol_version >= protocol.INGEST_DEDUPE_VERSION
        gate = protocol.INGEST_DEDUPE_VERSION
        assert (client.protocol_version >= gate) is True
        client.protocol_version = gate - 1
        assert (client.protocol_version >= gate) is False
