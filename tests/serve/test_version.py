"""Wire-protocol versioning: advertisement, rejection, negotiation.

Version 2 added the ``v`` field itself plus the ``prefilter`` block of
the ``stats`` result.  Contracts under test:

* responses always carry the server's ``v``;
* a version-1 request (no ``v``) is served unchanged;
* a request from the future gets an ``unsupported_version`` error frame
  advertising ``min_version``/``max_version`` — not a hangup;
* the client lowers its version into the advertised range and resends
  transparently.
"""

import socket

import numpy as np
import pytest

from repro.distortion.model import NormalDistortionModel
from repro.index.s3 import S3Index
from repro.index.store import FingerprintStore
from repro.serve import ServeClient, ServeConfig, ServerThread, protocol

NDIMS = 8


@pytest.fixture(scope="module")
def index():
    rng = np.random.default_rng(0)
    fp = rng.integers(0, 256, size=(400, NDIMS)).astype(np.uint8)
    store = FingerprintStore(
        fp, rng.integers(0, 5, 400).astype(np.uint32),
        rng.uniform(0, 100, 400),
    )
    return S3Index(store, model=NormalDistortionModel(NDIMS, 10.0))


def raw_roundtrip(port, message):
    with socket.create_connection(("127.0.0.1", port), timeout=5.0) as sock:
        protocol.send_message(sock, message)
        return protocol.recv_message(sock)


class TestFraming:
    def test_responses_carry_server_version(self):
        assert protocol.ok_response({}, {})["v"] == \
            protocol.PROTOCOL_VERSION
        assert protocol.error_response(None, "x", "y")["v"] == \
            protocol.PROTOCOL_VERSION

    def test_request_version_defaults_to_one(self):
        assert protocol.request_version({"op": "health"}) == 1
        assert protocol.request_version({"op": "health", "v": 2}) == 2

    @pytest.mark.parametrize("bad", ["2", 0, -1, 1.5, True, None])
    def test_request_version_rejects_non_integers(self, bad):
        with pytest.raises(protocol.ProtocolError, match="version"):
            protocol.request_version({"op": "health", "v": bad})

    def test_version_error_advertises_range(self):
        frame = protocol.version_error({"id": 7, "op": "health"}, 99)
        assert frame["ok"] is False
        assert frame["id"] == 7
        error = frame["error"]
        assert error["code"] == protocol.ERR_VERSION
        assert error["min_version"] == protocol.MIN_PROTOCOL_VERSION
        assert error["max_version"] == protocol.PROTOCOL_VERSION


class TestServerVersionGate:
    def test_v1_request_without_field_is_served(self, index):
        with ServerThread(index, ServeConfig(port=0)) as server:
            response = raw_roundtrip(server.port, {"op": "health"})
            assert response["ok"]
            assert response["v"] == protocol.PROTOCOL_VERSION

    def test_current_version_is_served(self, index):
        with ServerThread(index, ServeConfig(port=0)) as server:
            response = raw_roundtrip(
                server.port,
                {"op": "health", "v": protocol.PROTOCOL_VERSION},
            )
            assert response["ok"]

    def test_future_version_gets_error_frame_with_range(self, index):
        with ServerThread(index, ServeConfig(port=0)) as server:
            response = raw_roundtrip(
                server.port, {"op": "health", "v": 99, "id": 3}
            )
            assert response["ok"] is False
            assert response["id"] == 3
            error = response["error"]
            assert error["code"] == protocol.ERR_VERSION
            assert error["max_version"] == protocol.PROTOCOL_VERSION
            assert error["min_version"] == protocol.MIN_PROTOCOL_VERSION

    def test_stats_carries_version_and_prefilter_block(self, index):
        with ServerThread(index, ServeConfig(port=0)) as server:
            with ServeClient(port=server.port) as client:
                stats = client.stats()
        assert stats["protocol_version"] == protocol.PROTOCOL_VERSION
        prefilter = stats["prefilter"]
        assert prefilter["mode"] in ("auto", "on", "off")
        assert prefilter["segments_skipped"] >= 0
        assert prefilter["blocks_skipped"] >= 0
        assert stats["config"]["prefilter"] == prefilter["mode"]


class TestClientNegotiation:
    def test_client_negotiates_down_and_resends(self, index):
        with ServerThread(index, ServeConfig(port=0)) as server:
            with ServeClient(port=server.port) as client:
                client.protocol_version = 99  # a client from the future
                health = client.health()
                assert health["status"] == "ok"
                # One round-trip later the client speaks the server's best.
                assert client.protocol_version == protocol.PROTOCOL_VERSION
                stats = client.stats()
                # Both attempts were counted; the first as a version error.
                assert stats["requests"]["health"] == 2
                assert stats["errors"][protocol.ERR_VERSION] == 1

    def test_negotiation_gives_up_without_advertisement(self):
        client = ServeClient()
        assert not client._negotiate_version({})
        assert not client._negotiate_version({"max_version": "two"})
        assert client.protocol_version == protocol.PROTOCOL_VERSION

    def test_negotiation_gives_up_on_disjoint_ranges(self):
        client = ServeClient()
        # Server only speaks versions far above ours: no common version.
        assert not client._negotiate_version(
            {"min_version": 50, "max_version": 60}
        )
        assert client.protocol_version == protocol.PROTOCOL_VERSION

    def test_negotiation_lowers_into_range(self):
        client = ServeClient()
        client.protocol_version = 99
        assert client._negotiate_version({"min_version": 1, "max_version": 2})
        assert client.protocol_version == 2
