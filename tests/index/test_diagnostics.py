"""Tests for the index diagnostics."""

import numpy as np
import pytest

from repro.distortion.model import NormalDistortionModel
from repro.errors import ConfigurationError
from repro.index.diagnostics import (
    block_occupancy,
    clustering_summary,
    occupancy_summary,
)
from repro.index.s3 import S3Index
from repro.index.store import FingerprintStore


@pytest.fixture(scope="module")
def clustered_index():
    rng = np.random.default_rng(0)
    centers = rng.integers(40, 216, size=(10, 6))
    assign = rng.integers(0, 10, size=6000)
    pts = np.clip(centers[assign] + rng.normal(0, 8, (6000, 6)), 0, 255)
    store = FingerprintStore(
        fingerprints=pts.astype(np.uint8),
        ids=np.zeros(6000, dtype=np.uint32),
        timecodes=np.arange(6000, dtype=np.float64),
    )
    return S3Index(store, model=NormalDistortionModel(6, 8.0))


@pytest.fixture(scope="module")
def uniform_index():
    rng = np.random.default_rng(1)
    pts = rng.integers(0, 256, size=(6000, 6), dtype=np.uint8)
    store = FingerprintStore(
        fingerprints=pts,
        ids=np.zeros(6000, dtype=np.uint32),
        timecodes=np.arange(6000, dtype=np.float64),
    )
    return S3Index(store, model=NormalDistortionModel(6, 8.0))


class TestOccupancy:
    def test_counts_cover_all_rows(self, clustered_index):
        counts = block_occupancy(clustered_index, depth=10)
        assert counts.sum() == len(clustered_index)
        assert np.all(counts >= 1)

    def test_summary_fields(self, clustered_index):
        summary = occupancy_summary(clustered_index, depth=10)
        assert summary.total_blocks == 1024
        assert 0 < summary.populated_blocks <= 1024
        assert summary.max_rows >= summary.mean_rows
        assert 0.0 <= summary.gini <= 1.0
        assert 0.0 < summary.occupancy_rate <= 1.0

    def test_clustered_data_is_more_skewed_than_uniform(
        self, clustered_index, uniform_index
    ):
        """Real (clustered) fingerprints concentrate in few blocks."""
        clustered = occupancy_summary(clustered_index, depth=12)
        uniform = occupancy_summary(uniform_index, depth=12)
        assert clustered.gini > uniform.gini
        assert clustered.populated_blocks < uniform.populated_blocks

    def test_deeper_partitions_have_fewer_rows_per_block(self, clustered_index):
        shallow = occupancy_summary(clustered_index, depth=6)
        deep = occupancy_summary(clustered_index, depth=12)
        assert deep.mean_rows < shallow.mean_rows

    def test_rejects_bad_depth(self, clustered_index):
        with pytest.raises(ConfigurationError):
            block_occupancy(clustered_index, depth=0)


class TestClustering:
    def test_blocks_merge_into_fewer_sections(self, clustered_index):
        rng = np.random.default_rng(2)
        rows = rng.integers(0, len(clustered_index), 10)
        queries = np.clip(
            clustered_index.store.fingerprints[rows].astype(float)
            + rng.normal(0, 8.0, (10, 6)),
            0,
            255,
        )
        summary = clustering_summary(clustered_index, queries, 0.8, depth=12)
        assert summary.queries == 10
        assert summary.mean_sections <= summary.mean_blocks
        assert summary.merge_factor >= 1.0

    def test_rejects_empty_queries(self, clustered_index):
        with pytest.raises(ConfigurationError):
            clustering_summary(clustered_index, np.empty((0, 6)), 0.8)
