"""Admissibility and persistence tests for the segment-sketch pre-filter.

The acceptance property: for ANY segmentation of a corpus, any query and
any expectation/radius, running with the pre-filter on returns results
**bit-identical** to running with it off — on statistical and ε-range
queries, through the solo and batched paths, and across compaction and
WAL crash-recovery.  The sketches only ever skip work the scan would
have proved empty anyway.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distortion.model import NormalDistortionModel
from repro.errors import IndexError_
from repro.index.batch import BatchQueryExecutor
from repro.index.options import QueryOptions
from repro.index.segmented import (
    SegmentedS3Index,
    SegmentSketch,
    SketchConfig,
    sketch_filename,
)

NDIMS = 8
SIGMA = 10.0
ON = QueryOptions(prefilter="on")
OFF = QueryOptions(prefilter="off")


def make_records(n, seed=0, spread=10.0):
    """Clustered records: realistic curve locality for the sketches."""
    rng = np.random.default_rng(seed)
    centers = rng.integers(40, 216, size=(max(n // 100, 4), NDIMS))
    assign = rng.integers(0, centers.shape[0], size=n)
    fp = np.clip(
        centers[assign] + rng.normal(0, spread, (n, NDIMS)), 0, 255
    ).astype(np.uint8)
    ids = rng.integers(0, 50, n).astype(np.uint32)
    tcs = rng.uniform(0, 500, n)
    return fp, ids, tcs


def make_index(directory, cuts, records, flush_last=True, **kwargs):
    fp, ids, tcs = records
    index = SegmentedS3Index.create(
        directory, ndims=NDIMS,
        model=NormalDistortionModel(NDIMS, SIGMA),
        flush_rows=10 * len(ids), auto_compact=False, **kwargs,
    )
    bounds = [0, *sorted(cuts), len(ids)]
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if hi > lo:
            index.add(fp[lo:hi], ids[lo:hi], tcs[lo:hi])
            if hi != len(ids) or flush_last:
                index.flush()
    return index


def assert_bit_identical(a, b):
    assert np.array_equal(a.rows, b.rows)
    assert np.array_equal(a.ids, b.ids)
    assert np.array_equal(a.timecodes, b.timecodes)
    assert np.array_equal(a.fingerprints, b.fingerprints)
    if a.distances is not None or b.distances is not None:
        assert np.array_equal(a.distances, b.distances)


def assert_on_off_identical(index, query, alpha, epsilon):
    index.reset_threshold_cache()
    off = index.statistical_query(query, alpha, options=OFF)
    index.reset_threshold_cache()
    on = index.statistical_query(query, alpha, options=ON)
    assert_bit_identical(off, on)
    assert on.stats.segments_skipped >= 0
    assert off.stats.segments_skipped == 0
    assert_bit_identical(
        index.range_query(query, epsilon, options=OFF),
        index.range_query(query, epsilon, options=ON),
    )


# ----------------------------------------------------------------------
class TestSketchPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        index = make_index(tmp_path / "seg", [150], make_records(400))
        seg = index._segments[0]
        assert seg.sketch is not None
        path = tmp_path / "roundtrip.sketch"
        seg.sketch.save(path)
        loaded = SegmentSketch.load(path, seg.index.layout.key_bits)
        assert loaded.depth == seg.sketch.depth
        assert loaded.block_rows == seg.sketch.block_rows
        assert loaded.rows == seg.sketch.rows
        assert np.array_equal(loaded.occupied, seg.sketch.occupied)
        assert np.array_equal(loaded.mins, seg.sketch.mins)
        assert np.array_equal(loaded.maxs, seg.sketch.maxs)
        assert not list(tmp_path.glob("*.tmp"))  # atomic write cleaned up
        index.close()

    def test_corrupt_sidecar_raises(self, tmp_path):
        index = make_index(tmp_path / "seg", [], make_records(200))
        seg = index._segments[0]
        path = tmp_path / "seg" / sketch_filename(seg.meta.name)
        blob = bytearray(path.read_bytes())
        blob[:4] = b"XXXX"
        path.write_bytes(bytes(blob))
        with pytest.raises(IndexError_, match="sketch"):
            SegmentSketch.load(path, seg.index.layout.key_bits)
        index.close()

    def test_missing_sidecar_is_rebuilt_on_open(self, tmp_path):
        directory = tmp_path / "seg"
        index = make_index(directory, [100], make_records(300))
        names = [seg.meta.name for seg in index._segments]
        index.close()
        for name in names:
            (directory / sketch_filename(name)).unlink()
        reopened = SegmentedS3Index.open(directory)
        for seg in reopened._segments:
            assert seg.sketch is not None
            assert (directory / sketch_filename(seg.meta.name)).is_file()
        fp, _, _ = make_records(300)
        assert_on_off_identical(
            reopened, fp[0].astype(np.float64), 0.8, 20.0
        )
        reopened.close()

    def test_corrupt_sidecar_is_rebuilt_on_open(self, tmp_path):
        directory = tmp_path / "seg"
        index = make_index(directory, [], make_records(200))
        name = index._segments[0].meta.name
        index.close()
        (directory / sketch_filename(name)).write_bytes(b"garbage")
        reopened = SegmentedS3Index.open(directory)
        assert reopened._segments[0].sketch is not None
        fp, _, _ = make_records(200)
        assert_on_off_identical(
            reopened, fp[5].astype(np.float64), 0.8, 20.0
        )
        reopened.close()

    def test_manifest_records_sketch_meta(self, tmp_path):
        directory = tmp_path / "seg"
        index = make_index(directory, [], make_records(150))
        meta = index.segments[0]
        assert meta.sketch is not None
        assert set(meta.sketch) == {"depth", "block_rows"}
        index.close()

    def test_orphan_sketches_are_collected(self, tmp_path):
        directory = tmp_path / "seg"
        index = make_index(
            directory, [60, 120], make_records(300),
            policy=None,
        )
        index.close()
        orphan = directory / "seg-999999.sketch"
        orphan.write_bytes(b"stale")
        reopened = SegmentedS3Index.open(directory)
        assert not orphan.exists()
        reopened.close()

    def test_compaction_rebuilds_and_removes_old_sketches(self, tmp_path):
        directory = tmp_path / "seg"
        index = make_index(directory, [100, 200], make_records(300))
        old = [seg.meta.name for seg in index._segments]
        result = index.compact(force=True)
        assert result is not None
        for name in old:
            assert not (directory / sketch_filename(name)).exists()
        merged = index._segments[0]
        assert merged.sketch is not None
        assert (directory / sketch_filename(merged.meta.name)).is_file()
        assert merged.sketch.rows == merged.meta.count
        fp, _, _ = make_records(300)
        assert_on_off_identical(index, fp[9].astype(np.float64), 0.8, 20.0)
        index.close()

    def test_prefilter_info(self, tmp_path):
        index = make_index(tmp_path / "seg", [80], make_records(240))
        info = index.prefilter_info()
        assert info["segments"] == 2
        assert info["sketches"] == 2
        assert info["resident_bytes"] > 0
        index.close()


# ----------------------------------------------------------------------
class TestPrunePrefixes:
    """The occupancy bitmap never drops a prefix that owns rows."""

    @given(
        depth=st.integers(min_value=1, max_value=16),
        sketch_depth=st.integers(min_value=4, max_value=18),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=25, deadline=None)
    def test_pruned_ranges_equal_full_ranges(
        self, tmp_path_factory, depth, sketch_depth, seed
    ):
        tmp = tmp_path_factory.mktemp("prune")
        index = make_index(
            tmp / "seg", [], make_records(300, seed=seed),
            sketch_config=SketchConfig(depth=sketch_depth),
        )
        seg = index._segments[0]
        layout = seg.index.layout
        depth = min(depth, layout.key_bits)
        rng = np.random.default_rng(seed)
        universe = 1 << min(depth, 30)
        prefixes = np.unique(
            rng.integers(0, universe, size=40).astype(np.uint64)
        )
        pruned = seg.sketch.prune_prefixes(prefixes, depth)
        # Admissible: dropped prefixes own no rows, so the merged row
        # ranges are identical.
        assert layout.block_row_ranges(pruned, depth) == \
            layout.block_row_ranges(prefixes, depth)
        index.close()


# ----------------------------------------------------------------------
class TestAdmissibility:
    CORPUS = make_records(1000, seed=7)

    @given(
        cuts=st.lists(
            st.integers(min_value=1, max_value=999),
            min_size=0, max_size=4,
        ),
        flush_last=st.booleans(),
        query_row=st.integers(min_value=0, max_value=999),
        alpha=st.sampled_from([0.5, 0.8, 0.95]),
        epsilon=st.sampled_from([0.0, 15.0, 40.0]),
    )
    @settings(max_examples=10, deadline=None)
    def test_on_off_bit_identical_across_lifecycle(
        self, tmp_path_factory, cuts, flush_last, query_row, alpha, epsilon
    ):
        tmp = tmp_path_factory.mktemp("admissible")
        directory = tmp / "seg"
        index = make_index(directory, cuts, self.CORPUS, flush_last)
        fp, _, _ = self.CORPUS
        query = fp[query_row].astype(np.float64)

        # Fresh index (segments + possibly a memtable remainder).
        assert_on_off_identical(index, query, alpha, epsilon)

        # After compaction (sketches rebuilt over the merged store).
        if index.num_segments >= 2:
            index.compact(force=True)
            assert_on_off_identical(index, query, alpha, epsilon)

        # After a crash (unflushed tail in the WAL) and recovery.
        extra_fp, extra_ids, extra_tcs = make_records(30, seed=99)
        index.add(extra_fp, extra_ids, extra_tcs)
        del index  # simulated crash: no flush, no close
        recovered = SegmentedS3Index.open(directory)
        assert recovered.pending_rows > 0
        assert_on_off_identical(recovered, query, alpha, epsilon)
        recovered.close()

    def test_monolithic_index_accepts_prefilter_options(self, tmp_path):
        """On a monolithic S3Index the option is an accepted no-op."""
        from repro.index.s3 import S3Index
        from repro.index.store import FingerprintStore

        fp, ids, tcs = self.CORPUS
        index = S3Index(
            FingerprintStore(fp, ids, tcs),
            model=NormalDistortionModel(NDIMS, SIGMA),
        )
        query = fp[3].astype(np.float64)
        index.reset_threshold_cache()
        off = index.statistical_query(query, 0.8, options=OFF)
        index.reset_threshold_cache()
        on = index.statistical_query(query, 0.8, options=ON)
        assert_bit_identical(off, on)
        assert_bit_identical(
            index.range_query(query, 20.0, options=OFF),
            index.range_query(query, 20.0, options=ON),
        )


# ----------------------------------------------------------------------
class TestBatchedPrefilter:
    def test_batched_on_off_bit_identical_and_skips(self, tmp_path):
        # Well-separated clusters, one per segment: most (query, segment)
        # pairs are provably empty, so skips MUST happen.
        rng = np.random.default_rng(0)
        index = SegmentedS3Index.create(
            tmp_path / "seg", ndims=NDIMS,
            model=NormalDistortionModel(NDIMS, SIGMA),
            flush_rows=100_000, auto_compact=False,
        )
        centers = rng.uniform(30, 225, size=(6, NDIMS))
        for seg in range(6):
            fp = np.clip(
                rng.normal(centers[seg], 8.0, (200, NDIMS)), 0, 255
            ).astype(np.uint8)
            index.add(
                fp, np.full(200, seg, dtype=np.uint32),
                np.arange(200, dtype=np.float64),
            )
            index.flush()
        queries = np.clip(
            centers[rng.integers(0, 6, 16)]
            + rng.normal(0, SIGMA, (16, NDIMS)),
            0, 255,
        )

        outputs = {}
        skips = {}
        for mode in ("off", "on"):
            opts = QueryOptions(alpha=0.8, batch_size=8, prefilter=mode)
            with BatchQueryExecutor(index, options=opts) as executor:
                index.reset_threshold_cache()
                outputs[mode] = executor.query_batch(queries)
                skips[mode] = executor.stats.segments_skipped
        for off, on in zip(outputs["off"], outputs["on"]):
            assert_bit_identical(off, on)
        assert skips["off"] == 0
        assert skips["on"] > 0
        index.close()
