"""Tests for the exact incremental k-NN search on the S³ structure."""

import numpy as np
import pytest

from repro.distortion.model import NormalDistortionModel
from repro.errors import ConfigurationError
from repro.index.knn import knn_query
from repro.index.s3 import S3Index
from repro.index.seqscan import SequentialScanIndex
from repro.index.store import FingerprintStore


@pytest.fixture(scope="module")
def index():
    rng = np.random.default_rng(0)
    centers = rng.integers(40, 216, size=(25, 8))
    assign = rng.integers(0, 25, size=10_000)
    pts = np.clip(centers[assign] + rng.normal(0, 10, (10_000, 8)), 0, 255)
    store = FingerprintStore(
        fingerprints=pts.astype(np.uint8),
        ids=rng.integers(0, 50, 10_000).astype(np.uint32),
        timecodes=rng.uniform(0, 200, 10_000),
    )
    return S3Index(store, model=NormalDistortionModel(8, 10.0), depth=14)


class TestExactness:
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_matches_bruteforce_distances(self, index, k):
        scan = SequentialScanIndex(index.store)
        rng = np.random.default_rng(1)
        for _ in range(4):
            query = rng.uniform(0, 255, 8)
            fast = knn_query(index, query, k)
            brute = scan.knn_query(query, k)
            # Distances must agree exactly (rows may differ only on ties).
            assert np.allclose(fast.distances, brute.distances)

    def test_distances_sorted(self, index):
        result = knn_query(index, np.full(8, 128.0), 10)
        assert np.all(np.diff(result.distances) >= 0)

    def test_self_query_returns_zero_distance(self, index):
        query = index.store.fingerprints[42].astype(float)
        result = knn_query(index, query, 1)
        assert result.distances[0] == 0.0


class TestPruning:
    def test_scans_fraction_of_database(self, index):
        """The point of the structure: exact k-NN without a full scan."""
        rng = np.random.default_rng(2)
        query = np.clip(
            index.store.fingerprints[17].astype(float) + rng.normal(0, 5, 8),
            0, 255,
        )
        result = knn_query(index, query, 5)
        assert result.stats.rows_scanned < len(index) / 2

    def test_deeper_bound_scans_fewer_rows(self, index):
        query = index.store.fingerprints[99].astype(float)
        shallow = knn_query(index, query, 5, depth=8)
        deep = knn_query(index, query, 5, depth=16)
        assert deep.stats.rows_scanned <= shallow.stats.rows_scanned


class TestValidation:
    def test_rejects_bad_k(self, index):
        with pytest.raises(ConfigurationError):
            knn_query(index, np.zeros(8), 0)
        with pytest.raises(ConfigurationError):
            knn_query(index, np.zeros(8), len(index) + 1)

    def test_rejects_bad_query(self, index):
        with pytest.raises(ConfigurationError):
            knn_query(index, np.zeros(5), 3)

    def test_rejects_bad_depth(self, index):
        with pytest.raises(ConfigurationError):
            knn_query(index, np.zeros(8), 3, depth=0)
