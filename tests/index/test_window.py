"""Tests for the hyper-rectangular window query (Lawder comparison)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hilbert import HilbertCurve, blocks_at_depth
from repro.index.filtering import window_blocks
from repro.index.s3 import S3Index
from repro.index.store import FingerprintStore


def box_overlaps(node, lo, hi):
    return all(
        node.lo[j] < hi[j] and node.hi[j] > lo[j]
        for j in range(len(lo))
    )


class TestWindowBlocks:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_bruteforce(self, seed):
        curve = HilbertCurve(3, 4)
        rng = np.random.default_rng(seed)
        lo = rng.uniform(0, 10, 3)
        hi = lo + rng.uniform(1, 6, 3)
        sel = window_blocks(lo, hi, curve, 7)
        expected = sorted(
            n.prefix for n in blocks_at_depth(curve, 7) if box_overlaps(n, lo, hi)
        )
        assert list(sel.prefixes) == expected

    def test_full_window_selects_everything(self):
        curve = HilbertCurve(2, 4)
        sel = window_blocks([0, 0], [16, 16], curve, 5)
        assert len(sel) == 32

    def test_empty_window(self):
        curve = HilbertCurve(2, 4)
        sel = window_blocks([3, 3], [3, 8], curve, 4)
        assert len(sel) == 0

    def test_rejects_inverted_bounds(self):
        curve = HilbertCurve(2, 4)
        with pytest.raises(ConfigurationError):
            window_blocks([5, 5], [4, 8], curve, 4)

    def test_rejects_wrong_arity(self):
        curve = HilbertCurve(3, 4)
        with pytest.raises(ConfigurationError):
            window_blocks([0, 0], [4, 4], curve, 4)


class TestWindowQuery:
    @pytest.fixture(scope="class")
    def index(self):
        rng = np.random.default_rng(0)
        pts = rng.integers(0, 256, size=(4000, 6), dtype=np.uint8)
        store = FingerprintStore(
            fingerprints=pts,
            ids=np.zeros(4000, dtype=np.uint32),
            timecodes=np.arange(4000, dtype=np.float64),
        )
        return S3Index(store, depth=10)

    def test_matches_bruteforce_membership(self, index):
        rng = np.random.default_rng(1)
        for _ in range(5):
            lo = rng.uniform(0, 150, 6)
            hi = lo + rng.uniform(20, 100, 6)
            result = index.window_query(lo, hi)
            fp = index.store.fingerprints.astype(np.float64)
            expected = np.nonzero(np.all((fp >= lo) & (fp < hi), axis=1))[0]
            assert sorted(result.rows.tolist()) == sorted(expected.tolist())

    def test_half_open_semantics(self, index):
        row = 17
        point = index.store.fingerprints[row].astype(np.float64)
        inside = index.window_query(point, point + 1)
        assert row in inside.rows.tolist()
        excluded = index.window_query(point - 1, point)
        assert row not in excluded.rows.tolist()

    def test_stats_populated(self, index):
        result = index.window_query(np.zeros(6), np.full(6, 256.0))
        assert result.stats.blocks_selected > 0
        assert len(result) == len(index)
