"""Tests for the pseudo-disk batched search strategy (paper §IV-B)."""

import numpy as np
import pytest

from repro.distortion.model import NormalDistortionModel
from repro.errors import ConfigurationError
from repro.index.pseudodisk import PseudoDiskSearcher, auto_batch_size
from repro.index.s3 import S3Index
from repro.index.store import FingerprintStore


def clustered_store(n, ndims=8, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.integers(40, 216, size=(max(n // 200, 4), ndims))
    assign = rng.integers(0, centers.shape[0], size=n)
    pts = np.clip(centers[assign] + rng.normal(0, 10, (n, ndims)), 0, 255)
    return FingerprintStore(
        fingerprints=pts.astype(np.uint8),
        ids=rng.integers(0, 100, n).astype(np.uint32),
        timecodes=rng.uniform(0, 500, n),
    )


@pytest.fixture(scope="module")
def saved_index(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("pd")
    store = clustered_store(20_000)
    model = NormalDistortionModel(8, 10.0)
    index = S3Index(store, model=model)
    index.save(tmp / "db")
    return index, tmp / "db.store", model


class TestSetup:
    def test_rejects_unsorted_store(self, tmp_path):
        store = clustered_store(2000, seed=5)
        store.save(tmp_path / "raw.store")  # not curve-sorted
        with pytest.raises(ConfigurationError):
            PseudoDiskSearcher(
                tmp_path / "raw.store",
                NormalDistortionModel(8, 10.0),
                memory_rows=500,
            )

    def test_section_split_fits_budget(self, saved_index):
        index, path, model = saved_index
        budget = len(index) // 8
        searcher = PseudoDiskSearcher(path, model, memory_rows=budget)
        fullest = max(e - s for s, e in searcher.sections)
        assert fullest <= budget


class TestBatchedSearch:
    def test_matches_in_memory_index(self, saved_index):
        index, path, model = saved_index
        searcher = PseudoDiskSearcher(
            path, model, memory_rows=len(index) // 8, depth=index.depth
        )
        rng = np.random.default_rng(1)
        rows = rng.integers(0, len(index), size=6)
        queries = np.clip(
            index.store.fingerprints[rows].astype(float)
            + rng.normal(0, 10.0, (6, 8)),
            0,
            255,
        )
        results, stats = searcher.search_batch(queries, 0.8)
        assert stats.num_queries == 6
        for q, result in zip(queries, results):
            reference = index.statistical_query(q, 0.8)
            assert sorted(result.rows.tolist()) == sorted(
                reference.rows.tolist()
            )
            assert np.array_equal(
                np.sort(result.ids), np.sort(reference.ids)
            )

    def test_loads_only_needed_sections(self, saved_index):
        index, path, model = saved_index
        searcher = PseudoDiskSearcher(
            path, model, memory_rows=len(index) // 16
        )
        query = index.store.fingerprints[0].astype(float)[None, :]
        _, stats = searcher.search_batch(query, 0.8)
        assert stats.sections_loaded < stats.num_sections
        assert stats.bytes_loaded > 0

    def test_amortisation(self, saved_index):
        """Eq. (5): per-query cost shrinks as the batch grows."""
        index, path, model = saved_index
        searcher = PseudoDiskSearcher(path, model, memory_rows=len(index) // 8)
        rng = np.random.default_rng(2)
        queries = np.clip(
            index.store.fingerprints[
                rng.integers(0, len(index), size=24)
            ].astype(float)
            + rng.normal(0, 10.0, (24, 8)),
            0,
            255,
        )
        _, small = searcher.search_batch(queries[:2], 0.8)
        _, large = searcher.search_batch(queries, 0.8)
        # Load volume per query strictly smaller for the large batch.
        assert (
            large.bytes_loaded / large.num_queries
            <= small.bytes_loaded / small.num_queries + 1
        )

    def test_rejects_bad_query_shape(self, saved_index):
        _, path, model = saved_index
        searcher = PseudoDiskSearcher(path, model, memory_rows=10_000)
        with pytest.raises(ConfigurationError):
            searcher.search_batch(np.zeros((3, 5)), 0.8)


class TestAutoBatchSize:
    def test_grows_sublinearly(self):
        small = auto_batch_size(10_000)
        large = auto_batch_size(1_000_000)
        assert large > small
        assert large / small < 100  # sqrt scaling: x10 for x100 rows

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            auto_batch_size(0)
        with pytest.raises(ConfigurationError):
            auto_batch_size(100, target_load_fraction=0.0)
