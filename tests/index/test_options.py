"""Tests for the unified QueryOptions API and its deprecation shims.

Three contracts:

* :class:`QueryOptions` validates once, at construction, with the same
  messages the scattered per-class checks used to raise;
* every front-end that grew ``options=`` keeps its legacy tuning kwargs
  working behind a ``DeprecationWarning`` (and refuses ambiguous calls
  passing both), with behaviour identical to the options spelling;
* all four index classes satisfy :class:`repro.index.IndexProtocol`.
"""

import warnings

import numpy as np
import pytest

from repro.cbcd.detector import DetectorConfig
from repro.cbcd.monitor import MonitorConfig
from repro.distortion.model import NormalDistortionModel
from repro.errors import ConfigurationError
from repro.index import (
    IndexProtocol,
    QueryOptions,
    S3Index,
    SegmentedS3Index,
    SeqScanIndex,
    VAFileIndex,
    resolve_options,
)
from repro.index.batch import BatchQueryExecutor
from repro.index.store import FingerprintStore
from repro.serve.server import ServeConfig

NDIMS = 8
SIGMA = 10.0


def make_store(n=300, seed=0):
    rng = np.random.default_rng(seed)
    fp = rng.integers(0, 256, size=(n, NDIMS)).astype(np.uint8)
    return FingerprintStore(
        fp, rng.integers(0, 5, n).astype(np.uint32), rng.uniform(0, 100, n)
    )


# ----------------------------------------------------------------------
class TestQueryOptionsValidation:
    def test_defaults(self):
        opts = QueryOptions()
        assert opts.alpha == 0.8
        assert opts.executor == "auto"
        assert opts.prefilter == "auto"
        assert opts.prefilter_enabled

    @pytest.mark.parametrize("field,value", [
        ("alpha", 0.0),
        ("alpha", 1.5),
        ("batch_size", 0),
        ("workers", 0),
        ("executor", "gpu"),
        ("prefilter", "maybe"),
        ("parallel_gather_min_rows", -1),
        ("depth", 0),
    ])
    def test_rejects_out_of_domain(self, field, value):
        with pytest.raises(ConfigurationError):
            QueryOptions(**{field: value})

    def test_replace(self):
        opts = QueryOptions(alpha=0.5).replace(workers=4, prefilter="off")
        assert opts.alpha == 0.5
        assert opts.workers == 4
        assert not opts.prefilter_enabled

    def test_replace_validates(self):
        with pytest.raises(ConfigurationError):
            QueryOptions().replace(executor="nope")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            QueryOptions().alpha = 0.2


class TestResolveOptions:
    def test_options_and_legacy_is_an_error(self):
        with pytest.raises(ConfigurationError, match="not both"):
            resolve_options("API", QueryOptions(), workers=2)

    def test_legacy_only_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="API"):
            opts = resolve_options("API", None, workers=3, batch_size=16)
        assert opts.workers == 3
        assert opts.batch_size == 16

    def test_alpha_depth_stay_first_class(self):
        # alpha/depth are paper semantics, not engine tuning: passing
        # them never warns, and they override the options' values.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            opts = resolve_options(
                "API", QueryOptions(alpha=0.5), alpha=0.9, depth=6
            )
        assert opts.alpha == 0.9
        assert opts.depth == 6


# ----------------------------------------------------------------------
class TestExecutorShims:
    def test_legacy_kwargs_warn_but_work(self):
        index = S3Index(
            make_store(), model=NormalDistortionModel(NDIMS, SIGMA)
        )
        with pytest.warns(DeprecationWarning, match="BatchQueryExecutor"):
            legacy = BatchQueryExecutor(index, 0.8, batch_size=16, workers=2)
        modern = BatchQueryExecutor(
            index, options=QueryOptions(alpha=0.8, batch_size=16, workers=2)
        )
        assert legacy.options == modern.options

        queries = make_store(8, seed=3).fingerprints.astype(np.float64)
        index.reset_threshold_cache()
        a = legacy.query_batch(queries)
        index.reset_threshold_cache()
        b = modern.query_batch(queries)
        for ra, rb in zip(a, b):
            assert np.array_equal(ra.rows, rb.rows)
            assert np.array_equal(ra.ids, rb.ids)

    def test_needs_alpha_or_options(self):
        index = S3Index(
            make_store(), model=NormalDistortionModel(NDIMS, SIGMA)
        )
        with pytest.raises(ConfigurationError, match="alpha= or options="):
            BatchQueryExecutor(index)

    def test_alpha_plus_options_overrides(self):
        index = S3Index(
            make_store(), model=NormalDistortionModel(NDIMS, SIGMA)
        )
        executor = BatchQueryExecutor(
            index, 0.9, options=QueryOptions(alpha=0.5, workers=2)
        )
        assert executor.alpha == 0.9
        assert executor.workers == 2


class TestConfigShims:
    def test_detector_legacy_warns_and_mirrors(self):
        with pytest.warns(DeprecationWarning, match="DetectorConfig"):
            cfg = DetectorConfig(alpha=0.7, batch_size=16, executor="threads")
        assert cfg.options.alpha == 0.7
        assert cfg.options.batch_size == 16
        assert cfg.options.executor == "threads"
        assert cfg.batch_size == 16  # flat reads keep working
        assert cfg.workers == 1

    def test_detector_options_spelling_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cfg = DetectorConfig(
                options=QueryOptions(alpha=0.7, workers=2, prefilter="off")
            )
        assert cfg.alpha == 0.7  # synced from the options
        assert cfg.workers == 2

    def test_detector_both_is_an_error(self):
        with pytest.raises(ConfigurationError, match="not both"):
            DetectorConfig(options=QueryOptions(), workers=2)

    def test_detector_still_validates_alpha_domain(self):
        # The detector's stricter alpha < 1 holds for options-carried
        # alphas too (QueryOptions itself allows alpha == 1).
        with pytest.raises(ConfigurationError, match="alpha"):
            DetectorConfig(options=QueryOptions(alpha=1.0))

    def test_monitor_legacy_warns_and_mirrors(self):
        with pytest.warns(DeprecationWarning, match="MonitorConfig"):
            cfg = MonitorConfig(batch_size=8, workers=2)
        assert cfg.options.batch_size == 8
        assert cfg.options.workers == 2
        assert cfg.batch_size == 8

    def test_monitor_gains_executor_via_options(self):
        # MonitorConfig historically had no executor knob at all; the
        # unified options close that drift.
        cfg = MonitorConfig(options=QueryOptions(executor="threads"))
        assert cfg.options.executor == "threads"

    def test_monitor_both_is_an_error(self):
        with pytest.raises(ConfigurationError, match="not both"):
            MonitorConfig(options=QueryOptions(), batch_size=8)

    def test_serve_legacy_warns_and_mirrors(self):
        with pytest.warns(DeprecationWarning, match="ServeConfig"):
            cfg = ServeConfig(workers=2, executor="threads")
        assert cfg.options.workers == 2
        assert cfg.options.executor == "threads"
        assert cfg.workers == 2

    def test_serve_max_batch_wins_engine_batch_size(self):
        cfg = ServeConfig(
            max_batch=64, options=QueryOptions(batch_size=8, alpha=0.6)
        )
        assert cfg.options.batch_size == 64
        assert cfg.alpha == 0.6

    def test_serve_both_is_an_error(self):
        with pytest.raises(ConfigurationError, match="not both"):
            ServeConfig(options=QueryOptions(), workers=2)


# ----------------------------------------------------------------------
class TestIndexProtocol:
    def test_all_four_index_classes_conform(self, tmp_path):
        store = make_store()
        model = NormalDistortionModel(NDIMS, SIGMA)
        segmented = SegmentedS3Index.create(
            tmp_path / "seg", ndims=NDIMS, model=model
        )
        segmented.add(store.fingerprints, store.ids, store.timecodes)
        indexes = [
            S3Index(store, model=model),
            segmented,
            SeqScanIndex(store),
            VAFileIndex(store),
        ]
        query = store.fingerprints[0].astype(np.float64)
        opts = QueryOptions(prefilter="on")
        for index in indexes:
            assert isinstance(index, IndexProtocol), type(index).__name__
            assert len(index) == len(store)
            assert index.ndims == NDIMS
            assert isinstance(index.supports_coalesced_scans, bool)
            result = index.range_query(query, 5.0, options=opts)
            assert len(result) >= 1  # the row itself is within any radius
        segmented.close()
