"""Tests for process-parallel zero-copy scanning (:mod:`repro.index.parallel`).

The contract under test: every executor strategy — serial, threads,
processes — produces **bit-identical** results to the sequential
per-query path started from the same warm-start cache state, on both
index kinds; no fingerprint bytes ever cross a pipe; and a SIGKILLed
worker is healed without changing any result.
"""

import os
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distortion.model import NormalDistortionModel
from repro.index.batch import BatchQueryExecutor
from repro.index.parallel import (
    MONOLITHIC_STORE,
    ParallelScanError,
    ProcessScanPool,
    ScanArena,
    can_process_scan,
    segment_store_name,
    shared_memory_available,
    split_row_ranges,
)
from repro.index.options import QueryOptions
from repro.index.s3 import S3Index
from repro.index.segmented import SegmentedS3Index
from repro.index.store import FingerprintStore

NDIMS = 8
SIGMA = 10.0
ALPHA = 0.8

needs_shm = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing shared memory unavailable",
)


def make_records(n, seed=0, ndims=NDIMS):
    rng = np.random.default_rng(seed)
    centers = rng.integers(40, 216, size=(max(n // 100, 4), ndims))
    assign = rng.integers(0, centers.shape[0], size=n)
    fp = np.clip(
        centers[assign] + rng.normal(0, 10, (n, ndims)), 0, 255
    ).astype(np.uint8)
    ids = rng.integers(0, 50, n).astype(np.uint32)
    tcs = rng.uniform(0, 500, n)
    return fp, ids, tcs


def result_key(result):
    return (
        result.rows.tolist(),
        result.ids.tolist(),
        result.timecodes.tolist(),
        result.fingerprints.tobytes(),
    )


def make_queries(fp, n, seed):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, fp.shape[0], n)
    q = np.clip(
        fp[rows].astype(np.float64) + rng.normal(0, 4.0, (n, NDIMS)),
        0.0, 255.0,
    )
    if n >= 3:
        q[0] = q[n - 1]  # duplicates in the batch
    return q


def make_executor(index, **kwargs):
    """Build an executor, silencing the 1-CPU oversubscription warning."""
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("parallel_gather_min_rows", 0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return BatchQueryExecutor(index, ALPHA, **kwargs)


# ----------------------------------------------------------------------
class TestSplitRowRanges:
    def test_empty(self):
        assert split_row_ranges([], 4) == []
        assert split_row_ranges([(5, 5)], 4) == []

    def test_single_range_split(self):
        chunks = split_row_ranges([(0, 10)], 3)
        assert [c for _, c in chunks] == [[(0, 3)], [(3, 6)], [(6, 10)]]
        assert [off for off, _ in chunks] == [0, 3, 6]

    def test_boundary_inside_a_range(self):
        chunks = split_row_ranges([(0, 2), (10, 14)], 2)
        assert chunks == [(0, [(0, 2), (10, 11)]), (3, [(11, 14)])]

    @given(
        raw=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=300),
                st.integers(min_value=1, max_value=40),
            ),
            min_size=0, max_size=10,
        ),
        parts=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_concatenation_reproduces_input(self, raw, parts):
        # Build sorted, disjoint ranges the way block_row_ranges does.
        ranges = []
        pos = 0
        for gap, ln in sorted(raw):
            s = max(pos, gap)
            ranges.append((s, s + ln))
            pos = s + ln
        chunks = split_row_ranges(ranges, parts)
        assert len(chunks) <= parts
        want = [r for s, e in ranges for r in range(s, e)]
        got = []
        for offset, chunk in chunks:
            assert offset == len(got)
            for s, e in chunk:
                assert s < e
                got.extend(range(s, e))
        assert got == want


# ----------------------------------------------------------------------
class TestStoreSharing:
    def make_store(self, n=300):
        fp, ids, tcs = make_records(n, seed=11)
        return FingerprintStore(fp, ids, tcs)

    def assert_same(self, a, b):
        assert np.array_equal(a.fingerprints, b.fingerprints)
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.timecodes, b.timecodes)

    def test_file_handle_round_trip(self, tmp_path):
        store = self.make_store()
        path = tmp_path / "store.s3fp"
        store.save(path)
        loaded = FingerprintStore.load(path, mmap=True)
        handle = loaded.shared_handle
        assert handle is not None and handle.kind == "file"
        attached = FingerprintStore.open_shared(handle)
        self.assert_same(store, attached)

    @needs_shm
    def test_shm_handle_round_trip(self):
        store = self.make_store()
        assert store.shared_handle is None  # plain in-RAM store
        shared, shm = store.to_shared()
        try:
            handle = shared.shared_handle
            assert handle is not None and handle.kind == "shm"
            attached = FingerprintStore.open_shared(handle)
            self.assert_same(store, attached)
            self.assert_same(store, shared)
        finally:
            shm.close()
            shm.unlink()

    def test_can_process_scan(self, tmp_path):
        store = self.make_store()
        assert not can_process_scan([])
        path = tmp_path / "s.s3fp"
        store.save(path)
        mapped = FingerprintStore.load(path, mmap=True)
        assert can_process_scan([mapped])
        assert can_process_scan([store]) == shared_memory_available()


# ----------------------------------------------------------------------
@needs_shm
class TestProcessScanPool:
    @pytest.fixture(scope="class")
    def store(self):
        fp, ids, tcs = make_records(2000, seed=3)
        return FingerprintStore(fp, ids, tcs)

    @pytest.fixture(scope="class")
    def pool(self, store):
        with ProcessScanPool({MONOLITHIC_STORE: store}, workers=2) as pool:
            yield pool

    def test_validation(self, store):
        with pytest.raises(ParallelScanError):
            ProcessScanPool({}, workers=1)
        with pytest.raises(ParallelScanError):
            ProcessScanPool({MONOLITHIC_STORE: store}, workers=0)
        fp, ids, tcs = make_records(50, seed=1, ndims=4)
        other = FingerprintStore(fp, ids, tcs)
        with pytest.raises(ParallelScanError):
            ProcessScanPool({"a": store, "b": other}, workers=1)

    @given(
        raw=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1900),
                st.integers(min_value=1, max_value=120),
            ),
            min_size=0, max_size=6,
        ),
    )
    @settings(max_examples=20, deadline=None)
    def test_scan_union_equals_serial_gather(self, pool, store, raw):
        ranges = []
        pos = 0
        for s, ln in sorted(raw):
            s = max(pos, s)
            e = min(s + ln, len(store))
            if s < e:
                ranges.append((s, e))
                pos = e
        total = sum(e - s for s, e in ranges)
        rows = (
            np.concatenate([np.arange(s, e) for s, e in ranges])
            if ranges else np.empty(0, dtype=np.int64)
        )
        with pool.scan_union(MONOLITHIC_STORE, ranges) as arena:
            ids, tcs, fps = arena.columns(0)
            assert fps.shape == (total, NDIMS)
            assert np.array_equal(fps, store.fingerprints[rows])
            assert np.array_equal(ids, store.ids[rows])
            assert np.array_equal(tcs, store.timecodes[rows])

    def test_scan_stores_multi_item(self, pool, store):
        items = [
            (MONOLITHIC_STORE, [(0, 100), (500, 600)]),
            (MONOLITHIC_STORE, []),
            (MONOLITHIC_STORE, [(1500, 2000)]),
        ]
        with pool.scan_stores(items) as arena:
            for i, (_, ranges) in enumerate(items):
                rows = (
                    np.concatenate([np.arange(s, e) for s, e in ranges])
                    if ranges else np.empty(0, dtype=np.int64)
                )
                ids, tcs, fps = arena.columns(i)
                assert np.array_equal(fps, store.fingerprints[rows])
                assert np.array_equal(ids, store.ids[rows])
                assert np.array_equal(tcs, store.timecodes[rows])

    def test_zero_copy_transport(self, pool):
        stats = pool.stats
        assert stats.scans > 0
        assert stats.fingerprint_bytes_serialized == 0
        assert stats.bytes_sent > 0
        assert stats.bytes_received > 0

    def test_killed_worker_healed(self, store):
        with ProcessScanPool({MONOLITHIC_STORE: store}, workers=2) as pool:
            ranges = [(0, len(store))]
            with pool.scan_union(MONOLITHIC_STORE, ranges) as arena:
                ids0, tcs0, fps0 = arena.columns(0)
                before = (
                    fps0.tobytes(), ids0.tobytes(), tcs0.tobytes()
                )
            pool.kill_worker(0)
            with pool.scan_union(MONOLITHIC_STORE, ranges) as arena:
                ids1, tcs1, fps1 = arena.columns(0)
                after = (
                    fps1.tobytes(), ids1.tobytes(), tcs1.tobytes()
                )
            assert after == before
            assert pool.stats.worker_deaths >= 1
            assert pool.stats.fingerprint_bytes_serialized == 0

    def test_closed_pool_rejects_scans(self, store):
        pool = ProcessScanPool({MONOLITHIC_STORE: store}, workers=1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ParallelScanError):
            pool.scan_union(MONOLITHIC_STORE, [(0, 10)])

    def test_arena_close_is_idempotent(self, pool):
        arena = pool.scan_union(MONOLITHIC_STORE, [(0, 5)])
        assert isinstance(arena, ScanArena)
        arena.close()
        arena.close()


# ----------------------------------------------------------------------
class TestExecutorResolution:
    @pytest.fixture()
    def index(self):
        fp, ids, tcs = make_records(1000, seed=5)
        return S3Index(
            FingerprintStore(fp, ids, tcs),
            model=NormalDistortionModel(NDIMS, SIGMA),
        )

    def test_threads_is_explicit(self, index):
        ex = make_executor(index, executor="threads")
        assert ex.resolve_executor() == "threads"

    def test_processes_is_explicit(self, index):
        ex = make_executor(index, executor="processes")
        assert ex.resolve_executor() == "processes"

    def test_auto_needs_workers(self, index, monkeypatch):
        monkeypatch.setattr(
            "repro.index.batch.PROCESS_EXECUTOR_MIN_ROWS", 100
        )
        ex = make_executor(index, workers=1, executor="auto")
        assert ex.resolve_executor() == "threads"

    def test_auto_needs_rows(self, index):
        # The fixture index is far below PROCESS_EXECUTOR_MIN_ROWS.
        ex = make_executor(index, executor="auto")
        assert ex.resolve_executor() == "threads"

    @needs_shm
    def test_auto_picks_processes_at_scale(self, index, monkeypatch):
        # The fixed-threshold rule (the measured planner's fallback and
        # the planner="fixed" opt-out) still promotes to processes at
        # scale; the measured decision is covered in test_planner.py.
        monkeypatch.setattr(
            "repro.index.batch.PROCESS_EXECUTOR_MIN_ROWS", 100
        )
        # Lift the core gate so the scale decision is what's under test,
        # host-independently.
        monkeypatch.setattr("repro.index.batch.PROCESS_EXECUTOR_MIN_CPUS", 1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            ex = BatchQueryExecutor(index, options=QueryOptions(
                alpha=ALPHA, workers=2, parallel_gather_min_rows=0,
                executor="auto", planner="fixed",
            ))
        assert ex.resolve_executor() == "processes"

    def test_auto_never_picks_processes_on_tiny_hosts(
        self, index, monkeypatch
    ):
        # BENCH_parallel_scan: the pool is 0.67-0.86x vs threads when its
        # shards contend for 1-2 cores, so auto must stay on threads there
        # even when every other condition favours processes.
        monkeypatch.setattr(
            "repro.index.batch.PROCESS_EXECUTOR_MIN_ROWS", 100
        )
        monkeypatch.setattr("repro.index.batch.os.cpu_count", lambda: 2)
        ex = make_executor(index, executor="auto")
        assert ex.resolve_executor() == "threads"

    def test_oversubscription_warns(self, index):
        cpus = os.cpu_count()
        if cpus is None:
            pytest.skip("cpu count unknown")
        with pytest.warns(RuntimeWarning, match="exceeds os.cpu_count"):
            BatchQueryExecutor(index, ALPHA, workers=cpus + 1)

    @needs_shm
    def test_runtime_failure_falls_back_to_threads(self, index):
        with make_executor(index, executor="processes") as ex:
            queries = make_queries(index.store.fingerprints, 4, seed=9)
            index.reset_threshold_cache()
            want = [result_key(r) for r in ex.query_batch(queries)]
            # Sabotage the pool: close it behind the executor's back so
            # the next batch hits ParallelScanError mid-flight.
            ex._ensure_pool().close()
            index.reset_threshold_cache()
            with pytest.warns(RuntimeWarning, match="retrying batch"):
                got = [result_key(r) for r in ex.query_batch(queries)]
            assert got == want
            assert ex.resolve_executor() == "threads"


# ----------------------------------------------------------------------
@needs_shm
class TestMonolithicEquivalence:
    N = 4000

    @pytest.fixture(scope="class")
    def index(self):
        fp, ids, tcs = make_records(self.N, seed=7)
        return S3Index(
            FingerprintStore(fp, ids, tcs),
            model=NormalDistortionModel(NDIMS, SIGMA),
        )

    @pytest.fixture(scope="class")
    def executors(self, index):
        with make_executor(index, executor="processes") as procs, \
                make_executor(index, executor="threads") as threads:
            yield {"processes": procs, "threads": threads}

    @given(
        n=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=12, deadline=None)
    def test_all_strategies_bit_identical(self, index, executors, n, seed):
        queries = make_queries(index.store.fingerprints, n, seed)
        keys = {}
        for name, ex in executors.items():
            index.reset_threshold_cache()
            keys[name] = [result_key(r) for r in ex.query_batch(queries)]
        assert keys["processes"] == keys["threads"]
        for i in range(n):
            index.reset_threshold_cache()
            solo = index.statistical_query(queries[i], ALPHA)
            assert result_key(solo) == keys["processes"][i]

    def test_zero_fingerprint_bytes_serialized(self, index, executors):
        stats = executors["processes"].pool_stats()
        assert stats is not None
        assert stats["scans"] > 0
        assert stats["fingerprint_bytes_serialized"] == 0

    def test_worker_death_mid_workload(self, index):
        with make_executor(index, executor="processes") as ex:
            queries = make_queries(index.store.fingerprints, 6, seed=31)
            index.reset_threshold_cache()
            want = [result_key(r) for r in ex.query_batch(queries)]
            ex._ensure_pool().kill_worker(0)
            index.reset_threshold_cache()
            got = [result_key(r) for r in ex.query_batch(queries)]
            assert got == want
            stats = ex.pool_stats()
            assert stats["worker_deaths"] >= 1
            assert stats["fingerprint_bytes_serialized"] == 0


# ----------------------------------------------------------------------
@needs_shm
class TestSegmentedEquivalence:
    N = 3000

    def build(self, root, cuts, leave_pending=True):
        fp, ids, tcs = make_records(self.N, seed=21)
        seg = SegmentedS3Index.create(
            root, ndims=NDIMS,
            model=NormalDistortionModel(NDIMS, SIGMA),
            flush_rows=10**9, auto_compact=False, sync=False,
        )
        bounds = [0, *sorted(cuts), self.N]
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            if hi > lo:
                seg.add(fp[lo:hi], ids[lo:hi], tcs[lo:hi])
                if not (leave_pending and hi == self.N):
                    seg.flush()
        return seg, fp

    @pytest.fixture(scope="class")
    def setup(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("parallel-seg") / "seg"
        seg, fp = self.build(root, cuts=[900, 1800], leave_pending=True)
        with make_executor(seg, executor="processes") as procs, \
                make_executor(seg, executor="threads") as threads:
            yield seg, fp, {"processes": procs, "threads": threads}

    @given(
        n=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=10, deadline=None)
    def test_all_strategies_bit_identical(self, setup, n, seed):
        seg, fp, executors = setup
        queries = make_queries(fp, n, seed)
        keys = {}
        for name, ex in executors.items():
            seg.reset_threshold_cache()
            keys[name] = [result_key(r) for r in ex.query_batch(queries)]
        assert keys["processes"] == keys["threads"]
        for i in range(n):
            seg.reset_threshold_cache()
            solo = seg.statistical_query(queries[i], ALPHA)
            assert result_key(solo) == keys["processes"][i]

    def test_pool_covers_segments_not_memtable(self, setup):
        seg, _, executors = setup
        ex = executors["processes"]
        names = set(ex._pool_stores())
        assert names == {
            segment_store_name(s.meta.name) for s in seg._segments
        }

    def test_pool_rebuilt_after_flush(self, tmp_path):
        seg, fp = self.build(tmp_path / "seg", cuts=[1500])
        with make_executor(seg, executor="processes") as ex:
            queries = make_queries(fp, 4, seed=17)
            seg.reset_threshold_cache()
            ex.query_batch(queries)
            key_before = ex._pool_key
            assert key_before is not None
            seg.flush()  # seals the pending memtable into a new segment
            seg.reset_threshold_cache()
            batch = ex.query_batch(queries)
            assert ex._pool_key != key_before
            for i, q in enumerate(queries):
                seg.reset_threshold_cache()
                solo = seg.statistical_query(q, ALPHA)
                assert result_key(solo) == result_key(batch[i])

    def test_mmap_opened_segments_are_file_backed(self, tmp_path):
        seg, _ = self.build(tmp_path / "seg", cuts=[1500],
                            leave_pending=False)
        seg.close()
        reopened = SegmentedS3Index.open(tmp_path / "seg", mmap=True)
        try:
            assert reopened.num_segments >= 1
            for s in reopened._segments:
                handle = s.index.store.shared_handle
                assert handle is not None and handle.kind == "file"
        finally:
            reopened.close()
