"""Tests for the integer-domain refinement kernels (:mod:`repro.index.kernels`).

The contract: the integer path is *exactly* the old float64 pipeline —
not approximately.  Every distance, mask and rounded byte must match the
historical computation bit for bit, for integer queries (the fast path)
and non-integer queries (the literal fallback) alike.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.kernels import (
    INTEGER_QUERY_LIMIT,
    clip_round_u8,
    is_integer_query,
    range_refine,
    squared_distances,
    widen_rows,
    window_refine,
)

NDIMS = 8


def float_squared_distances(rows, query):
    """The historical float64 pipeline, verbatim."""
    diffs = rows.astype(np.float64) - np.asarray(query, dtype=np.float64)
    return np.einsum("ij,ij->i", diffs, diffs)


def make_rows(n, seed=0, ndims=NDIMS):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(n, ndims)).astype(np.uint8)


# ----------------------------------------------------------------------
class TestIsIntegerQuery:
    def test_integer_valued_floats(self):
        assert is_integer_query(np.array([0.0, 128.0, 255.0]))
        assert is_integer_query(np.array([-3.0, 1e6]))

    def test_fractional(self):
        assert not is_integer_query(np.array([1.0, 2.5]))

    def test_non_finite(self):
        assert not is_integer_query(np.array([1.0, np.nan]))
        assert not is_integer_query(np.array([np.inf, 0.0]))

    def test_magnitude_limit(self):
        assert is_integer_query(np.array([INTEGER_QUERY_LIMIT]))
        assert not is_integer_query(np.array([INTEGER_QUERY_LIMIT * 2]))


# ----------------------------------------------------------------------
class TestSquaredDistances:
    @given(
        n=st.integers(min_value=0, max_value=200),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_integer_path_bit_identical(self, n, seed):
        rows = make_rows(n, seed)
        rng = np.random.default_rng(seed + 1)
        query = rng.integers(0, 256, NDIMS).astype(np.float64)
        got = squared_distances(rows, query)
        want = float_squared_distances(rows, query)
        assert got.dtype == np.float64
        assert np.array_equal(got, want)

    @given(
        n=st.integers(min_value=0, max_value=100),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_fractional_query_fallback_bit_identical(self, n, seed):
        rows = make_rows(n, seed)
        rng = np.random.default_rng(seed + 1)
        query = rng.uniform(0, 255, NDIMS)  # fractional w.p. 1
        got = squared_distances(rows, query)
        want = float_squared_distances(rows, query)
        assert np.array_equal(got, want)

    def test_negative_integer_query(self):
        rows = make_rows(50, seed=3)
        query = np.array([-5.0, 300.0, 0.0, 255.0, -128.0, 1.0, 2.0, 3.0])
        assert np.array_equal(
            squared_distances(rows, query),
            float_squared_distances(rows, query),
        )

    def test_widened_reuse_matches(self):
        rows = make_rows(100, seed=7)
        widened = widen_rows(rows)
        assert widened.dtype == np.int32
        for qseed in range(4):
            rng = np.random.default_rng(qseed)
            query = rng.integers(0, 256, NDIMS).astype(np.float64)
            assert np.array_equal(
                squared_distances(rows, query, widened=widened),
                squared_distances(rows, query),
            )

    def test_extreme_corners_exact(self):
        # All-zeros vs all-255 rows against extreme queries: the largest
        # intermediates the byte domain can produce must stay exact.
        rows = np.vstack([
            np.zeros((1, NDIMS), dtype=np.uint8),
            np.full((1, NDIMS), 255, dtype=np.uint8),
        ])
        for query in (
            np.zeros(NDIMS), np.full(NDIMS, 255.0),
            np.full(NDIMS, float(1 << 20)),
        ):
            assert np.array_equal(
                squared_distances(rows, query),
                float_squared_distances(rows, query),
            )


# ----------------------------------------------------------------------
class TestRangeRefine:
    @given(
        n=st.integers(min_value=0, max_value=150),
        seed=st.integers(min_value=0, max_value=2**16),
        epsilon=st.floats(min_value=0.0, max_value=400.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_float_pipeline(self, n, seed, epsilon):
        rows = make_rows(n, seed)
        rng = np.random.default_rng(seed + 1)
        query = rng.integers(0, 256, NDIMS).astype(np.float64)
        keep, dists = range_refine(rows, query, epsilon)
        want_sq = float_squared_distances(rows, query)
        want_keep = want_sq <= epsilon**2
        assert np.array_equal(keep, want_keep)
        assert np.array_equal(dists, np.sqrt(want_sq[want_keep]))


# ----------------------------------------------------------------------
class TestWindowRefine:
    @given(
        n=st.integers(min_value=0, max_value=150),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_float_cast_path(self, n, seed):
        rows = make_rows(n, seed)
        rng = np.random.default_rng(seed + 1)
        center = rng.uniform(0, 255, NDIMS)
        half = rng.uniform(0, 64, NDIMS)
        lo, hi = center - half, center + half
        got = window_refine(rows, lo, hi)
        floats = rows.astype(np.float64)
        want = np.all((floats >= lo) & (floats < hi), axis=1)
        assert np.array_equal(got, want)

    def test_boundary_half_open(self):
        rows = np.array([[10], [11], [20], [21]], dtype=np.uint8)
        mask = window_refine(rows, np.array([10.0]), np.array([20.0]))
        assert mask.tolist() == [True, True, False, False]


# ----------------------------------------------------------------------
class TestClipRoundU8:
    @given(
        n=st.integers(min_value=0, max_value=200),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_copying_pipeline(self, n, seed):
        rng = np.random.default_rng(seed)
        values = rng.uniform(-40, 300, size=(n, NDIMS))
        want = np.clip(np.round(values), 0, 255).astype(np.uint8)
        got = clip_round_u8(values.copy())
        assert got.dtype == np.uint8
        assert np.array_equal(got, want)

    def test_half_to_even(self):
        values = np.array([0.5, 1.5, 2.5, 254.5, 255.5, -0.5])
        assert clip_round_u8(values).tolist() == [0, 2, 2, 254, 255, 0]
