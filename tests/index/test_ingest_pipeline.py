"""Tests for the pipelined ingest path: group commit, background
maintenance, snapshot-isolated reads.

The acceptance properties of the subsystem:

* **group-commit durability** — a batch of concurrent appends
  acknowledged by one shared fsync replays in full, and a torn tail
  inside a group-committed blob drops only the torn record(s), never an
  acknowledged prefix written by an earlier group;
* **kill-9 during background compaction** — a process SIGKILLed while
  the maintenance worker is compacting an archive spanning all three
  storage tiers reopens with every record reachable;
* **racing bit-identity** — queries running concurrently with
  background seal + compaction return, for any generated workload,
  exactly the records of a quiesced run (hypothesis-pinned);
* **backpressure** — once unsealed rows outrun the background seal,
  ``add`` sheds with the retryable :class:`IngestBackpressure` instead
  of stalling, and recovers after the worker catches up.
"""

import signal
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distortion.model import NormalDistortionModel
from repro.errors import IngestBackpressure
from repro.index.segmented import (
    CompactionPolicy,
    MaintenanceConfig,
    SegmentedS3Index,
    WriteAheadLog,
    replay,
)

NDIMS = 8
SIGMA = 10.0


def make_records(n, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.integers(40, 216, size=(max(n // 100, 4), NDIMS))
    assign = rng.integers(0, centers.shape[0], size=n)
    fp = np.clip(
        centers[assign] + rng.normal(0, 10, (n, NDIMS)), 0, 255
    ).astype(np.uint8)
    ids = rng.integers(0, 50, n).astype(np.uint32)
    tcs = rng.uniform(0, 500, n)
    return fp, ids, tcs


def result_key(result):
    return sorted(zip(
        result.ids.tolist(),
        result.timecodes.tolist(),
        [tuple(fp) for fp in result.fingerprints.tolist()],
    ))


# ----------------------------------------------------------------------
class TestGroupCommitDurability:
    def concurrent_append(self, wal, threads=6, appends=4, rows=3):
        """Drive overlapping appends so real groups form."""
        barrier = threading.Barrier(threads)
        errors = []

        def writer(t):
            barrier.wait()
            try:
                for a in range(appends):
                    fp, ids, tcs = make_records(rows, seed=100 * t + a)
                    wal.append(fp, ids, tcs)
            except BaseException as exc:  # pragma: no cover - surfaced
                errors.append(exc)

        ts = [
            threading.Thread(target=writer, args=(t,))
            for t in range(threads)
        ]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert not errors

    def test_group_commit_replays_in_full(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.create(path, NDIMS, durability="group")
        self.concurrent_append(wal)
        stats = wal.stats()
        wal.close()
        # Coalescing actually happened: fewer fsyncs than appends.
        assert 0 < stats["group_commits"] <= stats["appends"]
        assert stats["records"] == 6 * 4 * 3
        replayed = sum(fp.shape[0] for fp, _, _ in replay(path))
        assert replayed == 6 * 4 * 3

    def test_torn_tail_inside_group_batch(self, tmp_path):
        """Tearing mid-record drops only the torn suffix of the blob.

        A group commit writes several records as one blob; a crash can
        tear anywhere inside it.  Every fully-written record of the
        blob must still replay — the recovery unit is the record, not
        the fsync batch.
        """
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.create(path, NDIMS, durability="group")
        self.concurrent_append(wal)
        total = wal.stats()["records"]
        wal.close()
        size = path.stat().st_size
        # Tear 5 bytes off: mid-way through the last record's payload.
        with open(path, "r+b") as fh:
            fh.truncate(size - 5)
        replayed = sum(fp.shape[0] for fp, _, _ in replay(path))
        assert replayed == total - 3  # one 3-row record torn away
        # open() truncates the torn tail and appending resumes cleanly.
        wal = WriteAheadLog.open(path, durability="group")
        wal.append(*make_records(3, seed=999))
        wal.close()
        replayed = sum(fp.shape[0] for fp, _, _ in replay(path))
        assert replayed == total  # recovered prefix + new record

    def test_group_failure_never_acknowledges_followers(self, tmp_path):
        """A follower staged behind a failed leader flush must raise."""
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.create(path, NDIMS, durability="group")
        wal.append(*make_records(2, seed=0))
        # Sever the file handle: the next flush must fail loudly for
        # every append staged into that group, leader and followers.
        wal._fh.close()
        with pytest.raises(ValueError):
            wal.append(*make_records(2, seed=1))


# ----------------------------------------------------------------------
COMPACT_CRASH_SCRIPT = r"""
import os, signal, sys, time
import numpy as np
sys.path.insert(0, {src!r})
from repro.distortion.model import NormalDistortionModel
from repro.index.segmented import (
    CompactionPolicy, MaintenanceConfig, SegmentedS3Index,
)
from repro.storage import StorageConfig

sys.path.insert(0, {here!r})
from test_ingest_pipeline import make_records, NDIMS, SIGMA

directory = {directory!r}
index = SegmentedS3Index.create(
    directory, ndims=NDIMS, model=NormalDistortionModel(NDIMS, SIGMA),
    flush_rows=10 ** 9, auto_compact=False,
    policy=CompactionPolicy(max_segments=2),
    storage=StorageConfig(cold_dir="cold"),
)
for i in range(2):
    index.add(*make_records(150, seed=i))
    index.flush()
index.close()

# Reopen mmapped (segments come back warm), add a hot one, demote one
# cold: the compaction input spans all three tiers.
index = SegmentedS3Index.open(directory, mmap=True)
index.add(*make_records(150, seed=2))
index.flush()
index.storage.demote(index._segments[0])
tiers = sorted(s.meta.tier for s in index._segments)
assert tiers == ["cold", "hot", "warm"], tiers
index.add(*make_records(40, seed=3))            # WAL only, never sealed

# Kick the merge on the maintenance worker and die while it runs.
worker = index.start_maintenance(MaintenanceConfig())
worker.request_compact()
print("READY", flush=True)
time.sleep({delay!r})
os.kill(os.getpid(), signal.SIGKILL)
"""


class TestKill9DuringBackgroundCompaction:
    @pytest.mark.parametrize("delay", [0.0, 0.02, 0.2])
    def test_recovery_with_all_tiers(self, tmp_path, delay):
        """SIGKILL at varying points of the background merge.

        0.0 lands around the merge start, 0.02 typically mid-merge,
        0.2 usually after the switchover — every point must reopen with
        all 490 records reachable (the merge writes and fsyncs the new
        segment before the manifest references it, and deletes inputs
        only after).
        """
        directory = tmp_path / "idx"
        script = COMPACT_CRASH_SCRIPT.format(
            src=str(Path(__file__).resolve().parents[2] / "src"),
            here=str(Path(__file__).resolve().parent),
            directory=str(directory),
            delay=delay,
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=120,
        )
        assert "READY" in proc.stdout, proc.stderr
        assert proc.returncode == -signal.SIGKILL

        reopened = SegmentedS3Index.open(directory)
        assert len(reopened) == 3 * 150 + 40
        assert reopened.pending_rows == 40  # WAL replayed
        # Every batch is reachable wherever the merge died.
        for seed in range(4):
            fp = make_records(150 if seed < 3 else 40, seed=seed)[0]
            for row in (0, 7):
                result = reopened.range_query(
                    fp[row].astype(np.float64), 0.0
                )
                assert len(result) >= 1
        reopened.close()


# ----------------------------------------------------------------------
class TestRacingBitIdentity:
    @settings(deadline=None, max_examples=8)
    @given(
        batches=st.lists(st.integers(30, 90), min_size=3, max_size=6),
        tail=st.integers(0, 40),
        seed=st.integers(0, 2 ** 16),
    )
    def test_queries_racing_seal_and_compaction(
        self, tmp_path_factory, batches, tail, seed
    ):
        """Any workload, same answers with and without the storm.

        An index of several sealed segments plus an optional memtable
        tail answers a query set twice: quiesced, then while the
        maintenance worker seals the tail and merges the over-cap
        segment set.  The storm only reorganises rows, so both passes
        must return identical record multisets.  The warm-start
        threshold cache is reset before every query — selections are
        bit-identical only for equal cache histories.
        """
        directory = tmp_path_factory.mktemp("race") / "idx"
        index = SegmentedS3Index.create(
            directory, ndims=NDIMS,
            model=NormalDistortionModel(NDIMS, SIGMA),
            flush_rows=10 ** 9, auto_compact=False,
            policy=CompactionPolicy(max_segments=2), sync=False,
        )
        try:
            for i, n in enumerate(batches):
                index.add(*make_records(n, seed=seed + i))
                index.flush()
            if tail:
                index.add(*make_records(tail, seed=seed + 99))

            rng = np.random.default_rng(seed)
            all_fp = np.concatenate(
                [make_records(n, seed=seed + i)[0]
                 for i, n in enumerate(batches)]
            )
            picks = rng.integers(0, all_fp.shape[0], size=6)
            queries = np.clip(
                all_fp[picks].astype(np.float64)
                + rng.normal(0, SIGMA, (6, NDIMS)),
                0, 255,
            )

            def solo(q):
                index.reset_threshold_cache()
                return result_key(index.statistical_query(q, alpha=0.8))

            quiesced = [solo(q) for q in queries]
            worker = index.start_maintenance(MaintenanceConfig())
            worker.request_seal()
            worker.request_compact()
            for sweep in range(3):
                for q, expected in zip(queries, quiesced):
                    assert solo(q) == expected
            assert worker.drain()
            assert worker.errors == 0
            # The reorganisation really ran and converged to the cap.
            assert index.num_segments <= 2
            for q, expected in zip(queries, quiesced):
                assert solo(q) == expected
        finally:
            index.close()


# ----------------------------------------------------------------------
class TestBackpressure:
    def test_shed_past_limit_then_recover(self, tmp_path):
        # flush_rows is huge, so the only seal request comes from the
        # shed path itself — the limit is hit deterministically, however
        # fast the worker is.
        index = SegmentedS3Index.create(
            tmp_path / "idx", ndims=NDIMS,
            model=NormalDistortionModel(NDIMS, SIGMA),
            flush_rows=10 ** 9, auto_compact=False, sync=False,
        )
        try:
            worker = index.start_maintenance(
                MaintenanceConfig(backpressure_rows=120)
            )
            with pytest.raises(IngestBackpressure) as exc:
                for i in range(100):
                    index.add(*make_records(10, seed=i))
            # The refusal carries the gauge and is marked retryable.
            assert exc.value.pending_rows >= 120
            assert index.ingest_info()["backpressure_sheds"] >= 1
            # Once the worker drains, ingest resumes and loses nothing.
            assert worker.drain()
            before = len(index)
            index.add(*make_records(10, seed=1000))
            assert len(index) == before + 10
        finally:
            index.close()

    def test_no_worker_no_shedding(self, tmp_path):
        """Without maintenance the inline seal applies, never a shed."""
        index = SegmentedS3Index.create(
            tmp_path / "idx", ndims=NDIMS,
            model=NormalDistortionModel(NDIMS, SIGMA),
            flush_rows=20, auto_compact=False, sync=False,
        )
        try:
            for i in range(30):
                index.add(*make_records(10, seed=i))
            assert index.ingest_info()["backpressure_sheds"] == 0
            assert len(index) == 300
        finally:
            index.close()


# ----------------------------------------------------------------------
class TestLazyMemtableKeys:
    def test_scan_equals_eager_rebuild(self, tmp_path):
        """Deferred key encoding is invisible to query results."""
        index = SegmentedS3Index.create(
            tmp_path / "idx", ndims=NDIMS,
            model=NormalDistortionModel(NDIMS, SIGMA),
            flush_rows=10 ** 9, auto_compact=False, sync=False,
        )
        try:
            fp, ids, tcs = make_records(200, seed=3)
            # Interleave adds and queries so the key cache is filled
            # incrementally, across several backfill calls.
            for lo in range(0, 200, 50):
                index.add(fp[lo:lo + 50], ids[lo:lo + 50], tcs[lo:lo + 50])
                index.statistical_query(fp[lo].astype(np.float64), 0.8)
            # Equivalence against an index whose memtable was built in
            # one shot (its keys come from a single encode call).
            fresh = SegmentedS3Index.create(
                tmp_path / "fresh", ndims=NDIMS,
                model=NormalDistortionModel(NDIMS, SIGMA),
                flush_rows=10 ** 9, auto_compact=False, sync=False,
            )
            try:
                fresh.add(fp, ids, tcs)
                for row in (0, 13, 77, 199):
                    q = fp[row].astype(np.float64)
                    # Reset both warm-start caches: selections are
                    # bit-identical only for equal cache histories.
                    index.reset_threshold_cache()
                    fresh.reset_threshold_cache()
                    assert result_key(
                        index.statistical_query(q, alpha=0.8)
                    ) == result_key(fresh.statistical_query(q, alpha=0.8))
            finally:
                fresh.close()
        finally:
            index.close()
