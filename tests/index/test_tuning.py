"""Tests for the partition-depth tuning (paper §IV-A)."""

import numpy as np
import pytest

from repro.distortion.model import NormalDistortionModel
from repro.errors import ConfigurationError
from repro.index.s3 import S3Index
from repro.index.store import FingerprintStore
from repro.index.tuning import profile_depths, tune_depth


@pytest.fixture(scope="module")
def index_and_queries():
    rng = np.random.default_rng(0)
    centers = rng.integers(40, 216, size=(40, 6))
    assign = rng.integers(0, 40, size=8000)
    pts = np.clip(centers[assign] + rng.normal(0, 9, (8000, 6)), 0, 255)
    store = FingerprintStore(
        fingerprints=pts.astype(np.uint8),
        ids=np.zeros(8000, dtype=np.uint32),
        timecodes=np.arange(8000, dtype=np.float64),
    )
    index = S3Index(store, model=NormalDistortionModel(6, 9.0))
    queries = np.clip(
        pts[rng.integers(0, 8000, 12)] + rng.normal(0, 9.0, (12, 6)), 0, 255
    )
    return index, queries


class TestProfileDepths:
    def test_profiles_every_requested_depth(self, index_and_queries):
        index, queries = index_and_queries
        profiles = profile_depths(index, queries, 0.8, depths=[4, 8, 12])
        assert [p.depth for p in profiles] == [4, 8, 12]
        for p in profiles:
            assert p.total_seconds > 0
            assert p.rows_scanned > 0

    def test_refinement_shrinks_with_depth(self, index_and_queries):
        """T_r(p) decreases: deeper partitions scan fewer rows."""
        index, queries = index_and_queries
        profiles = profile_depths(index, queries, 0.8, depths=[2, 12])
        assert profiles[1].rows_scanned < profiles[0].rows_scanned

    def test_filtering_grows_with_depth(self, index_and_queries):
        """T_f(p) increases: deeper partitions expand more tree nodes."""
        index, queries = index_and_queries
        profiles = profile_depths(index, queries, 0.8, depths=[2, 12])
        assert profiles[1].blocks_selected >= profiles[0].blocks_selected

    def test_rejects_empty_queries(self, index_and_queries):
        index, _ = index_and_queries
        with pytest.raises(ConfigurationError):
            profile_depths(index, np.empty((0, 6)), 0.8, depths=[4])
        with pytest.raises(ConfigurationError):
            profile_depths(index, np.zeros(6), 0.8, depths=[4])


class TestTuneDepth:
    def test_applies_best_depth(self, index_and_queries):
        index, queries = index_and_queries
        best, profiles = tune_depth(index, queries, 0.8, depths=[4, 8, 12])
        assert best in (4, 8, 12)
        assert index.depth == best
        measured = {p.depth: p.total_seconds for p in profiles}
        assert measured[best] == min(measured.values())

    def test_apply_false_leaves_index_unchanged(self, index_and_queries):
        index, queries = index_and_queries
        before = index.depth
        tune_depth(index, queries, 0.8, depths=[4], apply=False)
        assert index.depth == before
