"""Tiered-storage acceptance properties of the segmented index.

Two guarantees from the subsystem's contract
(``docs/storage-tiers.md``):

* **bit-identity** — a tiered index answers every query with exactly
  the arrays an untiered index over the same records produces, across
  any interleaving of ingest, flush, compaction, demotion, budget
  changes and queries (hypothesis drives the interleavings);
* **kill-9 crash recovery** — a process holding segments in all three
  tiers (plus unflushed WAL rows) can be SIGKILLed at any point and the
  directory reopens complete: every sealed row is queryable and the WAL
  replays, with cold segments rebuilt from their sidecars alone.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distortion.model import NormalDistortionModel
from repro.index.batch import BatchQueryExecutor
from repro.index.options import QueryOptions
from repro.index.segmented import SegmentedS3Index
from repro.storage import FakeBlobBackend, FileBlobBackend, StorageConfig

NDIMS = 8
SIGMA = 15.0


def make_records(n, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.integers(40, 216, size=(4, NDIMS))
    assign = rng.integers(0, 4, size=n)
    fp = np.clip(
        centers[assign] + rng.normal(0, 10, (n, NDIMS)), 0, 255
    ).astype(np.uint8)
    ids = rng.integers(0, 50, n).astype(np.uint32)
    tcs = rng.uniform(0, 500, n)
    return fp, ids, tcs


def make_pair(tmp_path):
    """A tiered index and an untiered twin over the same directory kind."""
    kwargs = dict(
        ndims=NDIMS,
        model=NormalDistortionModel(NDIMS, SIGMA),
        flush_rows=10 ** 9,
        auto_compact=False,
    )
    backend = FakeBlobBackend()
    tiered = SegmentedS3Index.create(
        tmp_path / "tiered",
        storage=StorageConfig(backend=backend, promote_after=2),
        **kwargs,
    )
    plain = SegmentedS3Index.create(tmp_path / "plain", **kwargs)
    return tiered, plain, backend


def assert_identical(a, b):
    assert np.array_equal(a.rows, b.rows)
    assert np.array_equal(a.ids, b.ids)
    assert np.array_equal(a.timecodes, b.timecodes)
    assert np.array_equal(a.fingerprints, b.fingerprints)
    if a.distances is not None and b.distances is not None:
        assert np.array_equal(a.distances, b.distances)


op_strategy = st.one_of(
    st.tuples(st.just("ingest"), st.integers(20, 120), st.integers(0, 9)),
    st.tuples(st.just("flush"), st.just(0), st.just(0)),
    st.tuples(st.just("compact"), st.just(0), st.just(0)),
    st.tuples(st.just("demote"), st.integers(0, 5), st.just(0)),
    st.tuples(st.just("budget"), st.integers(0, 3), st.just(0)),
    st.tuples(st.just("query"), st.integers(0, 9), st.just(0)),
)


class TestBitIdentity:
    @given(ops=st.lists(op_strategy, min_size=4, max_size=12))
    @settings(max_examples=20, deadline=None)
    def test_interleavings_match_untiered(self, tmp_path_factory, ops):
        tmp_path = tmp_path_factory.mktemp("tiered")
        tiered, plain, _ = make_pair(tmp_path)
        try:
            seen_rows = 0
            for op, arg, seed in ops:
                if op == "ingest":
                    batch = make_records(arg, seed=seed)
                    tiered.add(*batch)
                    plain.add(*batch)
                    seen_rows += arg
                elif op == "flush":
                    tiered.flush()
                    plain.flush()
                elif op == "compact":
                    tiered.compact(force=True)
                    plain.compact(force=True)
                elif op == "demote" and tiered.num_segments:
                    segs = tiered._segments
                    seg = segs[arg % len(segs)]
                    if seg.resident:
                        tiered.storage.demote(seg)
                elif op == "budget":
                    per = (
                        tiered.storage.segment_bytes(tiered._segments[0])
                        if tiered.num_segments else 1
                    )
                    tiered.storage.budget_bytes = (
                        None if arg == 0 else arg * per
                    )
                    tiered.storage.enforce_budget()
                elif op == "query" and seen_rows:
                    q = make_records(1, seed=seed)[0][0].astype(np.float64)
                    assert_identical(
                        tiered.statistical_query(q, alpha=0.8),
                        plain.statistical_query(q, alpha=0.8),
                    )
                    assert_identical(
                        tiered.range_query(q, 40.0),
                        plain.range_query(q, 40.0),
                    )
            # Always finish with a query barrage over both engines.
            queries = make_records(6, seed=99)[0].astype(np.float64)
            for q in queries:
                assert_identical(
                    tiered.statistical_query(q, alpha=0.8),
                    plain.statistical_query(q, alpha=0.8),
                )
        finally:
            tiered.close()
            plain.close()

    @pytest.mark.parametrize("prefetch", ["auto", "off"])
    def test_batched_engine_matches_untiered(self, tmp_path, prefetch):
        tiered, plain, backend = make_pair(tmp_path)
        backend.latency_s = 0.002
        for i in range(3):
            batch = make_records(300, seed=i)
            tiered.add(*batch)
            plain.add(*batch)
            tiered.flush()
            plain.flush()
        tiered.storage.demote(tiered._segments[0])
        tiered.storage.demote(tiered._segments[2])
        queries = make_records(24, seed=7)[0].astype(np.float64)
        options = QueryOptions(alpha=0.8, prefetch=prefetch)
        with BatchQueryExecutor(tiered, options=options) as te, \
                BatchQueryExecutor(plain, options=options) as pe:
            for rt, rp in zip(te.query_all(queries), pe.query_all(queries)):
                assert_identical(rt, rp)
            if prefetch == "auto":
                assert te.stats.cold_segments > 0
                assert te.stats.cold_bytes > 0
        tiered.close()
        plain.close()


CRASH_SCRIPT = r"""
import os, signal, sys
import numpy as np
sys.path.insert(0, {src!r})
from repro.distortion.model import NormalDistortionModel
from repro.index.segmented import SegmentedS3Index
from repro.storage import StorageConfig

sys.path.insert(0, {here!r})
from test_tiered import make_records, NDIMS, SIGMA

directory = {directory!r}
index = SegmentedS3Index.create(
    directory, ndims=NDIMS, model=NormalDistortionModel(NDIMS, SIGMA),
    flush_rows=10 ** 9, auto_compact=False,
    storage=StorageConfig(cold_dir="cold"),
)
for i in range(2):
    index.add(*make_records(150, seed=i))
    index.flush()
index.close()

# Reopen mmapped: the two sealed segments come back *warm*.
index = SegmentedS3Index.open(directory, mmap=True)
index.add(*make_records(150, seed=2))
index.flush()                                   # third segment: hot
index.storage.demote(index._segments[0])        # first segment: cold
tiers = sorted(s.meta.tier for s in index._segments)
assert tiers == ["cold", "hot", "warm"], tiers
index.add(*make_records(40, seed=3))            # WAL only, never flushed
print("READY", flush=True)
os.kill(os.getpid(), signal.SIGKILL)
"""


class TestCrashRecovery:
    def test_kill9_with_segments_in_all_tiers(self, tmp_path):
        directory = tmp_path / "idx"
        script = CRASH_SCRIPT.format(
            src=str(Path(__file__).resolve().parents[2] / "src"),
            here=str(Path(__file__).resolve().parent),
            directory=str(directory),
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=120,
        )
        # SIGKILL after READY: the process never exits cleanly.
        assert "READY" in proc.stdout, proc.stderr
        assert proc.returncode == -signal.SIGKILL

        reopened = SegmentedS3Index.open(directory)
        assert reopened.num_segments == 3
        assert reopened.pending_rows == 40  # WAL replayed
        assert len(reopened) == 3 * 150 + 40
        tiers = sorted(s.meta.tier for s in reopened._segments)
        assert tiers.count("cold") == 1

        # Every tier's rows are reachable: exact-match range queries
        # from each flushed batch and from the unflushed tail.
        for seed in range(4):
            fp = make_records(150 if seed < 3 else 40, seed=seed)[0]
            for row in (0, 5):
                result = reopened.range_query(
                    fp[row].astype(np.float64), 0.0
                )
                assert len(result) >= 1
        reopened.close()

    def test_crashed_demotion_leaves_usable_directory(self, tmp_path):
        """A blob uploaded but tier never flipped: segment stays
        resident on reopen and the stray blob is GC'd as an orphan
        only when unreferenced."""
        directory = tmp_path / "idx"
        index = SegmentedS3Index.create(
            directory, ndims=NDIMS,
            model=NormalDistortionModel(NDIMS, SIGMA),
            flush_rows=10 ** 9, auto_compact=False,
            storage=StorageConfig(cold_dir="cold"),
        )
        index.add(*make_records(100, seed=0))
        index.flush()
        name = index._segments[0].meta.name
        # Crash simulation: the blob was uploaded, the manifest never
        # flipped the tier (demote crashed between the two steps).
        index.storage.backend.put(name, b"half-finished upload bytes")
        index.close()

        reopened = SegmentedS3Index.open(directory)
        seg = reopened._segments[0]
        assert seg.resident and seg.meta.tier != "cold"
        # The stale blob is still referenced by a manifest segment name,
        # so the conservative GC keeps it; a real demotion overwrites it.
        result = reopened.range_query(
            make_records(100, seed=0)[0][3].astype(np.float64), 0.0
        )
        assert len(result) >= 1
        reopened.close()
