"""Tests for the VA-file baseline."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, IndexError_
from repro.index.seqscan import SequentialScanIndex
from repro.index.store import FingerprintStore
from repro.index.vafile import VAFile


@pytest.fixture(scope="module")
def store():
    rng = np.random.default_rng(0)
    centers = rng.integers(40, 216, size=(20, 8))
    assign = rng.integers(0, 20, size=5000)
    pts = np.clip(centers[assign] + rng.normal(0, 10, (5000, 8)), 0, 255)
    return FingerprintStore(
        fingerprints=pts.astype(np.uint8),
        ids=rng.integers(0, 50, 5000).astype(np.uint32),
        timecodes=rng.uniform(0, 100, 5000),
    )


class TestConstruction:
    def test_rejects_empty_store(self):
        with pytest.raises(IndexError_):
            VAFile(FingerprintStore.empty(8))

    def test_rejects_bad_bits(self, store):
        with pytest.raises(ConfigurationError):
            VAFile(store, bits=0)
        with pytest.raises(ConfigurationError):
            VAFile(store, bits=9)

    def test_approximation_compression(self, store):
        va = VAFile(store, bits=4)
        # Approximations stored as one byte per dim here, but conceptually
        # 4 bits; the table never exceeds the raw fingerprints.
        assert va.approximation_bytes() <= store.fingerprints.nbytes
        assert va.approximations.max() < 16


class TestCorrectness:
    @pytest.mark.parametrize("bits", [2, 4, 8])
    @pytest.mark.parametrize("epsilon", [0.0, 15.0, 60.0])
    def test_matches_sequential_scan(self, store, bits, epsilon):
        va = VAFile(store, bits=bits)
        scan = SequentialScanIndex(store)
        rng = np.random.default_rng(1)
        for _ in range(3):
            query = rng.uniform(0, 255, size=8)
            a = va.range_query(query, epsilon)
            b = scan.range_query(query, epsilon)
            assert sorted(a.rows.tolist()) == sorted(b.rows.tolist())

    def test_lower_bound_is_a_lower_bound(self, store):
        va = VAFile(store, bits=3)
        rng = np.random.default_rng(2)
        query = rng.uniform(0, 255, size=8)
        bounds = va._lower_bound_sq(query)
        diffs = store.fingerprints.astype(np.float64) - query
        true_sq = np.einsum("ij,ij->i", diffs, diffs)
        assert np.all(bounds <= true_sq + 1e-9)

    def test_validates_inputs(self, store):
        va = VAFile(store)
        with pytest.raises(ConfigurationError):
            va.range_query(np.zeros(3), 10.0)
        with pytest.raises(ConfigurationError):
            va.range_query(np.zeros(8), -1.0)


class TestSelectivity:
    def test_more_bits_filter_better(self, store):
        rng = np.random.default_rng(3)
        query = rng.uniform(50, 200, size=8)
        coarse = VAFile(store, bits=2).selectivity(query, 30.0)
        fine = VAFile(store, bits=6).selectivity(query, 30.0)
        assert fine <= coarse

    def test_large_radius_defeats_the_filter(self, store):
        """The dimensionality-curse effect: a big sphere keeps everything."""
        va = VAFile(store, bits=4)
        query = np.full(8, 128.0)
        assert va.selectivity(query, 500.0) == pytest.approx(1.0)

    def test_stats_account_candidates(self, store):
        va = VAFile(store, bits=4)
        result = va.range_query(np.full(8, 128.0), 40.0)
        assert result.stats.rows_scanned >= len(result)
        assert result.stats.blocks_selected == result.stats.rows_scanned
