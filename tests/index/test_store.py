"""Tests for the single-file fingerprint store."""

import numpy as np
import pytest

from repro.errors import StoreError
from repro.index.store import (
    FingerprintStore,
    StoreBuilder,
    column_offsets,
    expected_file_size,
    read_header,
)


@pytest.fixture
def small_store():
    rng = np.random.default_rng(0)
    return FingerprintStore(
        fingerprints=rng.integers(0, 256, size=(100, 20), dtype=np.uint8),
        ids=rng.integers(0, 50, size=100, dtype=np.uint32),
        timecodes=rng.uniform(0, 1000, size=100),
    )


class TestConstruction:
    def test_coerces_dtypes(self):
        store = FingerprintStore(
            fingerprints=np.zeros((3, 4), dtype=np.int64),
            ids=np.arange(3),
            timecodes=np.arange(3),
        )
        assert store.fingerprints.dtype == np.uint8
        assert store.ids.dtype == np.uint32
        assert store.timecodes.dtype == np.float64

    def test_rejects_column_mismatch(self):
        with pytest.raises(StoreError):
            FingerprintStore(
                fingerprints=np.zeros((3, 4)),
                ids=np.arange(2),
                timecodes=np.arange(3),
            )

    def test_rejects_non_2d_fingerprints(self):
        with pytest.raises(StoreError):
            FingerprintStore(
                fingerprints=np.zeros(5), ids=np.arange(5), timecodes=np.arange(5)
            )

    def test_len_ndims_nbytes(self, small_store):
        assert len(small_store) == 100
        assert small_store.ndims == 20
        assert small_store.nbytes() == 100 * (20 + 4 + 8)


class TestCombinators:
    def test_empty(self):
        store = FingerprintStore.empty(8)
        assert len(store) == 0
        assert store.ndims == 8

    def test_concatenate(self, small_store):
        merged = FingerprintStore.concatenate([small_store, small_store])
        assert len(merged) == 200
        assert np.array_equal(merged.ids[:100], small_store.ids)

    def test_concatenate_rejects_dim_mismatch(self, small_store):
        other = FingerprintStore.empty(5)
        with pytest.raises(StoreError):
            FingerprintStore.concatenate([small_store, other])

    def test_concatenate_rejects_empty_list(self):
        with pytest.raises(StoreError):
            FingerprintStore.concatenate([])

    def test_take_reorders(self, small_store):
        rows = np.array([5, 1, 7])
        taken = small_store.take(rows)
        assert np.array_equal(taken.ids, small_store.ids[rows])
        assert np.array_equal(taken.fingerprints, small_store.fingerprints[rows])

    def test_row_slice_is_copy(self, small_store):
        part = small_store.row_slice(10, 20)
        assert len(part) == 10
        part.fingerprints[0, 0] = 255
        # Original untouched (0..255 equality check on the source row).
        assert not np.shares_memory(part.fingerprints, small_store.fingerprints)


class TestPersistence:
    def test_save_load_roundtrip(self, small_store, tmp_path):
        path = tmp_path / "db.store"
        small_store.save(path)
        loaded = FingerprintStore.load(path)
        assert np.array_equal(loaded.fingerprints, small_store.fingerprints)
        assert np.array_equal(loaded.ids, small_store.ids)
        assert np.array_equal(loaded.timecodes, small_store.timecodes)

    def test_mmap_load(self, small_store, tmp_path):
        path = tmp_path / "db.store"
        small_store.save(path)
        mapped = FingerprintStore.load(path, mmap=True)
        assert np.array_equal(
            np.asarray(mapped.fingerprints), small_store.fingerprints
        )
        assert np.array_equal(np.asarray(mapped.timecodes), small_store.timecodes)

    def test_header(self, small_store, tmp_path):
        path = tmp_path / "db.store"
        small_store.save(path)
        assert read_header(path) == (100, 20)

    def test_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "junk.store"
        path.write_bytes(b"NOPE" + b"\x00" * 30)
        with pytest.raises(StoreError, match="junk.store"):
            read_header(path)

    def test_rejects_truncated_file(self, small_store, tmp_path):
        path = tmp_path / "trunc.store"
        small_store.save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 100])
        with pytest.raises(StoreError, match="trunc.store"):
            FingerprintStore.load(path)

    def test_rejects_truncated_file_mmap(self, small_store, tmp_path):
        path = tmp_path / "trunc.store"
        small_store.save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 1])
        with pytest.raises(StoreError, match="trunc.store"):
            FingerprintStore.load(path, mmap=True)

    def test_rejects_header_shorter_than_header_struct(self, tmp_path):
        path = tmp_path / "tiny.store"
        path.write_bytes(b"S3FP\x01")
        with pytest.raises(StoreError, match="tiny.store"):
            read_header(path)

    def test_rejects_version_mismatch(self, small_store, tmp_path):
        path = tmp_path / "future.store"
        small_store.save(path)
        data = bytearray(path.read_bytes())
        data[4:8] = (99).to_bytes(4, "little")
        path.write_bytes(bytes(data))
        with pytest.raises(StoreError, match="future.store"):
            FingerprintStore.load(path)

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(StoreError, match="missing.store"):
            read_header(tmp_path / "missing.store")

    def test_expected_file_size_matches_disk(self, small_store, tmp_path):
        path = tmp_path / "db.store"
        small_store.save(path)
        assert path.stat().st_size == expected_file_size(100, 20)

    def test_column_offsets_are_contiguous(self):
        offsets = column_offsets(100, 20)
        assert offsets["ids"] - offsets["fingerprints"] == 100 * 20
        assert offsets["timecodes"] - offsets["ids"] == 100 * 4


class TestStoreBuilder:
    def test_append_and_build(self, small_store):
        builder = StoreBuilder(20, initial_capacity=4)
        for start in range(0, 100, 10):
            part = small_store.row_slice(start, start + 10)
            assert builder.append(part.fingerprints, part.ids,
                                  part.timecodes) == 10
        assert len(builder) == 100
        built = builder.build()
        assert np.array_equal(built.fingerprints, small_store.fingerprints)
        assert np.array_equal(built.ids, small_store.ids)
        assert np.array_equal(built.timecodes, small_store.timecodes)

    def test_build_copies(self):
        builder = StoreBuilder(4)
        builder.append(np.zeros((2, 4), dtype=np.uint8),
                       np.arange(2), np.arange(2))
        built = builder.build()
        assert not np.shares_memory(built.fingerprints,
                                    builder.fingerprints)

    def test_views_track_size(self):
        builder = StoreBuilder(4, initial_capacity=1)
        assert builder.fingerprints.shape == (0, 4)
        builder.append(np.ones((3, 4), dtype=np.uint8),
                       np.arange(3), np.arange(3))
        assert builder.fingerprints.shape == (3, 4)
        assert builder.ids.shape == (3,)
        assert builder.timecodes.shape == (3,)

    def test_append_store(self, small_store):
        builder = StoreBuilder(20)
        builder.append_store(small_store)
        builder.append_store(small_store)
        assert len(builder) == 200
        built = builder.build()
        assert np.array_equal(built.ids[100:], small_store.ids)

    def test_clear_retains_nothing(self, small_store):
        builder = StoreBuilder(20)
        builder.append_store(small_store)
        builder.clear()
        assert len(builder) == 0
        assert len(builder.build()) == 0

    def test_rejects_dimension_mismatch(self):
        builder = StoreBuilder(4)
        with pytest.raises(StoreError):
            builder.append(np.zeros((2, 5), dtype=np.uint8),
                           np.arange(2), np.arange(2))

    def test_rejects_column_length_mismatch(self):
        builder = StoreBuilder(4)
        with pytest.raises(StoreError):
            builder.append(np.zeros((2, 4), dtype=np.uint8),
                           np.arange(3), np.arange(2))

    def test_rejects_bad_params(self):
        with pytest.raises(StoreError):
            StoreBuilder(0)
        with pytest.raises(StoreError):
            StoreBuilder(4, initial_capacity=0)
