"""Verification of the block-selection algorithms against brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distortion.model import NormalDistortionModel, PerComponentNormalModel
from repro.errors import ConfigurationError
from repro.hilbert.butz import HilbertCurve
from repro.hilbert.partition import blocks_at_depth
from repro.index.filtering import (
    best_first_blocks,
    grid_probability,
    range_blocks,
    select_blocks_threshold,
    statistical_blocks,
)


def brute_force_probs(curve, model, query, depth):
    out = {}
    for node in blocks_at_depth(curve, depth):
        out[node.prefix] = model.box_probability(
            np.array(node.lo, dtype=float), np.array(node.hi, dtype=float), query
        )
    return out


@pytest.fixture(scope="module")
def small_setup():
    curve = HilbertCurve(3, 4)
    model = NormalDistortionModel(3, sigma=2.5)
    return curve, model


class TestThresholdSelection:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_bruteforce(self, small_setup, seed):
        curve, model = small_setup
        rng = np.random.default_rng(seed)
        query = rng.uniform(0, curve.side - 1, size=3)
        depth = 7
        probs = brute_force_probs(curve, model, query, depth)
        sel = select_blocks_threshold(query, model, curve, depth, 0.01)
        expected = sorted(p for p, v in probs.items() if v > 0.01)
        assert list(sel.prefixes) == expected
        for prefix, prob in zip(sel.prefixes, sel.probabilities):
            assert prob == pytest.approx(probs[int(prefix)], abs=1e-12)

    def test_probabilities_sum_to_grid_mass(self, small_setup):
        curve, model = small_setup
        query = np.array([7.5, 3.0, 12.0])
        probs = brute_force_probs(curve, model, query, 6)
        assert sum(probs.values()) == pytest.approx(
            grid_probability(query, model, curve), abs=1e-9
        )

    def test_higher_threshold_selects_fewer(self, small_setup):
        curve, model = small_setup
        query = np.array([8.0, 8.0, 8.0])
        low = select_blocks_threshold(query, model, curve, 8, 0.001)
        high = select_blocks_threshold(query, model, curve, 8, 0.05)
        assert len(high) <= len(low)
        assert set(high.prefixes.tolist()) <= set(low.prefixes.tolist())

    def test_rejects_bad_threshold(self, small_setup):
        curve, model = small_setup
        q = np.zeros(3)
        with pytest.raises(ConfigurationError):
            select_blocks_threshold(q, model, curve, 4, 0.0)
        with pytest.raises(ConfigurationError):
            select_blocks_threshold(q, model, curve, 4, 1.0)

    def test_rejects_bad_depth(self, small_setup):
        curve, model = small_setup
        with pytest.raises(ConfigurationError):
            select_blocks_threshold(np.zeros(3), model, curve, 0, 0.1)
        with pytest.raises(ConfigurationError):
            select_blocks_threshold(np.zeros(3), model, curve, 99, 0.1)

    def test_rejects_query_arity(self, small_setup):
        curve, model = small_setup
        with pytest.raises(ConfigurationError):
            select_blocks_threshold(np.zeros(2), model, curve, 4, 0.1)

    def test_per_component_model(self):
        curve = HilbertCurve(3, 4)
        model = PerComponentNormalModel([1.0, 3.0, 6.0])
        query = np.array([8.0, 4.0, 10.0])
        probs = brute_force_probs(curve, model, query, 6)
        sel = select_blocks_threshold(query, model, curve, 6, 0.02)
        expected = sorted(p for p, v in probs.items() if v > 0.02)
        assert list(sel.prefixes) == expected


class TestStatisticalBlocks:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_meets_conditional_expectation(self, seed):
        curve = HilbertCurve(3, 4)
        model = NormalDistortionModel(3, sigma=2.0)
        rng = np.random.default_rng(seed)
        query = rng.uniform(0, curve.side - 1, size=3)
        alpha = 0.8
        sel = statistical_blocks(query, model, curve, 8, alpha)
        target = alpha * grid_probability(query, model, curve)
        assert sel.total_probability >= target - 1e-12

    def test_monte_carlo_expectation(self):
        """Planted distorted points land in V_alpha at rate >= alpha."""
        curve = HilbertCurve(3, 5)
        sigma = 3.0
        model = NormalDistortionModel(3, sigma)
        rng = np.random.default_rng(7)
        query = np.array([16.0, 12.0, 20.0])
        sel = statistical_blocks(query, model, curve, 9, 0.8)
        chosen = {
            int(p) for p in sel.prefixes
        }
        # Sample referenced points S = Q + dS conditioned on the grid.
        hits = total = 0
        while total < 4000:
            s = query + rng.normal(0, sigma, 3)
            if np.any(s < 0) or np.any(s >= curve.side):
                continue
            total += 1
            cell = [int(c) for c in np.floor(s)]
            prefix = curve.encode(cell) >> (curve.total_bits - 9)
            hits += prefix in chosen
        assert hits / total >= 0.78  # alpha = 0.8 minus sampling noise

    def test_counts_descents(self):
        curve = HilbertCurve(3, 4)
        model = NormalDistortionModel(3, 2.0)
        sel = statistical_blocks(np.array([8.0, 8.0, 8.0]), model, curve, 6, 0.9)
        assert sel.descents >= 1
        assert sel.nodes_visited > 0

    def test_rejects_bad_alpha(self):
        curve = HilbertCurve(2, 3)
        model = NormalDistortionModel(2, 1.0)
        with pytest.raises(ConfigurationError):
            statistical_blocks(np.zeros(2), model, curve, 4, 0.0)
        with pytest.raises(ConfigurationError):
            statistical_blocks(np.zeros(2), model, curve, 4, 1.0)


class TestBestFirst:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_minimal_cardinality(self, seed):
        """Best-first returns the provably minimal block set."""
        curve = HilbertCurve(3, 4)
        model = NormalDistortionModel(3, 2.5)
        rng = np.random.default_rng(seed)
        query = rng.uniform(2, curve.side - 3, size=3)
        alpha = 0.75
        probs = brute_force_probs(curve, model, query, 7)
        target = alpha * sum(probs.values())
        # Greedy optimum by sorting all block probabilities.
        ordered = sorted(probs.values(), reverse=True)
        acc, k_min = 0.0, 0
        for v in ordered:
            acc += v
            k_min += 1
            if acc >= target:
                break
        sel = best_first_blocks(query, model, curve, 7, alpha)
        assert len(sel) == k_min
        assert sel.total_probability >= target - 1e-12

    def test_never_larger_than_threshold_method(self):
        curve = HilbertCurve(3, 4)
        model = NormalDistortionModel(3, 2.0)
        query = np.array([10.0, 5.0, 7.0])
        bf = best_first_blocks(query, model, curve, 8, 0.8)
        th = statistical_blocks(query, model, curve, 8, 0.8)
        assert len(bf) <= len(th)


class TestRangeBlocks:
    @pytest.mark.parametrize("seed,eps_frac", [(0, 0.2), (1, 0.4), (2, 0.05)])
    def test_matches_bruteforce(self, seed, eps_frac):
        curve = HilbertCurve(3, 4)
        rng = np.random.default_rng(seed)
        query = rng.uniform(0, curve.side - 1, size=3)
        epsilon = curve.side * eps_frac
        sel = range_blocks(query, epsilon, curve, 7)
        expected = sorted(
            n.prefix
            for n in blocks_at_depth(curve, 7)
            if n.min_sq_distance(query) <= epsilon**2
        )
        assert list(sel.prefixes) == expected

    def test_zero_radius_selects_home_block(self):
        curve = HilbertCurve(2, 4)
        query = np.array([5.2, 9.7])
        sel = range_blocks(query, 0.0, curve, 6)
        assert len(sel) >= 1
        for node in blocks_at_depth(curve, 6):
            if node.prefix in set(sel.prefixes.tolist()):
                assert node.min_sq_distance(query) == 0.0

    def test_rejects_negative_epsilon(self):
        curve = HilbertCurve(2, 3)
        with pytest.raises(ConfigurationError):
            range_blocks(np.zeros(2), -1.0, curve, 4)

    def test_sphere_intersections_grow_with_dimension(self):
        """The curse the paper exploits: an equal-expectation sphere cuts
        far more blocks (relative to the total) as D grows."""
        fractions = []
        for ndims in (2, 4, 6):
            curve = HilbertCurve(ndims, 3)
            depth = ndims  # one split per dimension
            query = np.full(ndims, curve.side / 2.0)
            eps = curve.side * 0.45
            sel = range_blocks(query, eps, curve, depth)
            fractions.append(len(sel) / 2.0**depth)
        assert fractions[0] <= fractions[-1]
