"""Tests for the measured execution planner (:mod:`repro.index.planner`).

The planner only ever changes *speed*, never answers (bit-identity of
the strategies is property-tested in ``test_batch``/``test_parallel``),
so these tests pin its decision logic: the hard admissibility guards,
monotonicity of the measured decision in the rows estimate, exact
equivalence of ``mode="fixed"`` with the legacy threshold rule, the
fallback when no calibration is available, sidecar persistence, and
the rolling EMA refresh.
"""

import dataclasses
import os
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.index.batch import (
    PROCESS_EXECUTOR_MIN_CPUS,
    PROCESS_EXECUTOR_MIN_ROWS,
    BatchQueryExecutor,
)
from repro.index.options import QueryOptions
from repro.index.planner import (
    CALIBRATION_DIR_ENV,
    CALIBRATION_TTL_SECONDS,
    OBSERVE_MIN_ROWS,
    PLANNER_MODES,
    Calibration,
    ExecutorPlan,
    PlannerStats,
    choose_executor,
    get_calibration,
    host_key,
    load_calibration,
    measure_calibration,
    save_calibration,
    set_calibration,
    sidecar_path,
)
from repro.index.s3 import S3Index
from repro.index.store import FingerprintStore

from .test_batch import NDIMS, SIGMA, make_records

from repro.distortion.model import NormalDistortionModel


def make_calibration(**overrides) -> Calibration:
    """A synthetic fresh calibration with easily reasoned crossovers.

    serial = 10 ns/row; threads = 100 us + 5 ns/row; processes =
    workers x 1 ms + 2 ns/row — so serial wins small, threads win the
    middle band, processes win at very large rows.
    """
    fields = dict(
        host=host_key(),
        # Must match the real host shape or is_stale() rejects it.
        cpu_count=os.cpu_count() or 1,
        created_at=time.time(),
        gather_ns_per_row=10.0,
        thread_gather_ns_per_row=5.0,
        thread_dispatch_ns=100_000.0,
        memcpy_ns_per_row=1.0,
        ipc_task_ns=1_000_000.0,
        process_ns_per_row=2.0,
    )
    fields.update(overrides)
    return Calibration(**fields)


@pytest.fixture(autouse=True)
def _isolated_calibration():
    """Never leak the module singleton between tests."""
    set_calibration(None)
    yield
    set_calibration(None)


# ----------------------------------------------------------------------
class TestCalibration:
    def test_measure_is_fresh_and_positive(self):
        cal = measure_calibration()
        assert not cal.is_stale()
        assert cal.source == "measured"
        assert cal.gather_ns_per_row > 0
        assert cal.thread_gather_ns_per_row > 0
        assert cal.ipc_task_ns > 0

    def test_json_round_trip(self):
        cal = make_calibration()
        assert Calibration.from_json(cal.to_json()) == cal

    def test_from_json_rejects_unknown_schema(self):
        payload = make_calibration().to_json()
        payload["schema_version"] = 999
        with pytest.raises(ValueError):
            Calibration.from_json(payload)

    def test_stale_by_age_host_and_shape(self):
        assert not make_calibration().is_stale()
        old = make_calibration(
            created_at=time.time() - CALIBRATION_TTL_SECONDS - 1
        )
        assert old.is_stale()
        assert make_calibration(host="elsewhere-x86-cpu64").is_stale()
        future = make_calibration(created_at=time.time() + 3600)
        assert future.is_stale()

    def test_predict_is_affine_in_rows(self):
        cal = make_calibration()
        a = cal.predict_ns(1000, workers=4)
        b = cal.predict_ns(2000, workers=4)
        c = cal.predict_ns(3000, workers=4)
        for key in ("serial", "threads", "processes"):
            assert b[key] - a[key] == pytest.approx(c[key] - b[key])


class TestObserve:
    def test_ema_pulls_toward_measurement(self):
        cal = make_calibration()
        rows = OBSERVE_MIN_ROWS
        seconds = rows * 100.0 * 1e-9  # 100 ns/row measured
        out = cal.observe("serial", rows, seconds)
        assert out.gather_ns_per_row == pytest.approx(
            0.8 * 10.0 + 0.2 * 100.0
        )
        assert out.observations == 1
        assert out.source == "observed"

    def test_small_batches_ignored(self):
        cal = make_calibration()
        assert cal.observe("serial", OBSERVE_MIN_ROWS - 1, 1.0) is cal
        assert cal.observe("serial", OBSERVE_MIN_ROWS, 0.0) is cal
        assert cal.observe("nonsense", OBSERVE_MIN_ROWS, 1.0) is cal

    def test_processes_first_observation_replaces(self):
        cal = make_calibration(process_ns_per_row=None)
        rows = OBSERVE_MIN_ROWS
        out = cal.observe("processes", rows, rows * 50.0 * 1e-9)
        assert out.process_ns_per_row == pytest.approx(50.0)

    def test_converges_under_repetition(self):
        cal = make_calibration()
        rows = 10 * OBSERVE_MIN_ROWS
        for _ in range(50):
            cal = cal.observe("threads", rows, rows * 42.0 * 1e-9)
        assert cal.thread_gather_ns_per_row == pytest.approx(42.0, rel=1e-3)


# ----------------------------------------------------------------------
class TestSidecar:
    def test_round_trip(self, tmp_path):
        cal = make_calibration()
        path = tmp_path / "planner.json"
        assert save_calibration(cal, path)
        loaded = load_calibration(path)
        assert loaded is not None
        assert loaded.source == "sidecar"
        assert loaded.gather_ns_per_row == cal.gather_ns_per_row

    def test_load_rejects_stale_and_corrupt(self, tmp_path):
        path = tmp_path / "planner.json"
        assert load_calibration(path) is None  # missing
        path.write_text("{ not json")
        assert load_calibration(path) is None  # corrupt
        stale = make_calibration(
            created_at=time.time() - CALIBRATION_TTL_SECONDS - 1
        )
        save_calibration(stale, path)
        assert load_calibration(path) is None  # stale

    def test_sidecar_path_is_opt_in(self, monkeypatch):
        monkeypatch.delenv(CALIBRATION_DIR_ENV, raising=False)
        assert sidecar_path() is None

    def test_get_calibration_persists_and_reloads(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(CALIBRATION_DIR_ENV, str(tmp_path))
        first = get_calibration()
        path = sidecar_path()
        assert path is not None and path.is_file()
        # A new process (simulated by clearing the singleton) reloads
        # the sidecar instead of re-measuring.
        set_calibration(None)
        second = get_calibration()
        assert second.source == "sidecar"
        assert second.gather_ns_per_row == pytest.approx(
            first.gather_ns_per_row
        )

    def test_get_calibration_caches_in_process(self):
        first = get_calibration()
        assert get_calibration() is first
        assert get_calibration(refresh=True) is not first


# ----------------------------------------------------------------------
class TestChooseExecutor:
    def kwargs(self, **overrides):
        base = dict(
            workers=4,
            index_rows=1_000_000,
            can_processes=True,
            calibration=make_calibration(),
        )
        base.update(overrides)
        return base

    def test_never_processes_below_min_cpus(self):
        # Even with a calibration that makes processes free, <= 2 cpus
        # (below PROCESS_EXECUTOR_MIN_CPUS) is a hard guard.
        cal = make_calibration(ipc_task_ns=0.0, process_ns_per_row=0.0)
        for cpus in (1, 2):
            for rows in (0, 10_000, 10_000_000):
                plan = choose_executor(
                    rows, 32, cpus, **self.kwargs(calibration=cal)
                )
                assert plan.strategy != "processes"

    def test_never_processes_without_zero_copy(self):
        cal = make_calibration(ipc_task_ns=0.0, process_ns_per_row=0.0)
        plan = choose_executor(
            10_000_000, 32, 8,
            **self.kwargs(calibration=cal, can_processes=False),
        )
        assert plan.strategy != "processes"

    def test_single_worker_is_serial(self):
        plan = choose_executor(10_000_000, 32, 8, **self.kwargs(workers=1))
        assert plan.strategy == "serial"

    def test_measured_decision_is_monotone_in_rows(self):
        order = {"serial": 0, "threads": 1, "processes": 2}
        seen = -1
        for rows in np.geomspace(1, 50_000_000, 40).astype(int):
            plan = choose_executor(int(rows), 32, 8, **self.kwargs())
            assert order[plan.strategy] >= seen
            seen = order[plan.strategy]

    def test_measured_crossovers_match_the_model(self):
        # serial vs threads cross at dispatch/(serial-thread rate):
        # 100 us / 5 ns = 20k rows.
        small = choose_executor(1_000, 32, 8, **self.kwargs())
        mid = choose_executor(100_000, 32, 8, **self.kwargs())
        big = choose_executor(50_000_000, 32, 8, **self.kwargs())
        assert small.strategy == "serial"
        assert mid.strategy == "threads"
        assert big.strategy == "processes"
        assert set(big.predicted_ns) == {"serial", "threads", "processes"}

    def test_fixed_mode_reproduces_legacy_rule(self):
        cases = [
            # (workers, index_rows, cpus, can_proc) -> strategy
            ((1, 10**6, 8, True), "serial"),
            ((4, PROCESS_EXECUTOR_MIN_ROWS - 1, 8, True), "threads"),
            ((4, 10**6, PROCESS_EXECUTOR_MIN_CPUS - 1, True), "threads"),
            ((4, 10**6, 8, False), "threads"),
            ((4, PROCESS_EXECUTOR_MIN_ROWS, PROCESS_EXECUTOR_MIN_CPUS,
              True), "processes"),
        ]
        for (workers, index_rows, cpus, can), expected in cases:
            plan = choose_executor(
                5_000, 32, cpus, workers=workers, index_rows=index_rows,
                can_processes=can, mode="fixed",
            )
            assert plan.strategy == expected, (workers, index_rows, cpus)
            assert plan.source == "fixed"

    def test_auto_falls_back_without_calibration(self):
        plan = choose_executor(
            5_000, 32, 8, workers=4, index_rows=10**6,
            can_processes=True, calibration=None, mode="auto",
        )
        assert plan.source == "fixed"
        assert plan.reason.startswith("calibration unavailable")

    def test_auto_falls_back_on_stale_calibration(self):
        stale = make_calibration(
            created_at=time.time() - CALIBRATION_TTL_SECONDS - 1
        )
        plan = choose_executor(
            5_000, 32, 8, workers=4, index_rows=10**6,
            can_processes=True, calibration=stale, mode="auto",
        )
        assert plan.source == "fixed"

    def test_tie_breaks_toward_simpler_strategy(self):
        cal = make_calibration(
            gather_ns_per_row=10.0,
            thread_gather_ns_per_row=10.0,
            thread_dispatch_ns=0.0,
        )
        plan = choose_executor(1_000, 32, 8, **self.kwargs(calibration=cal))
        assert plan.strategy == "serial"


# ----------------------------------------------------------------------
class TestPlannerStats:
    def test_record_and_snapshot(self):
        stats = PlannerStats()
        stats.record(ExecutorPlan("serial", 100, source="measured"))
        stats.record(ExecutorPlan("threads", 100, source="fixed"))
        stats.observe(
            ExecutorPlan(
                "serial", 100, predicted_ns={"serial": 500.0},
                source="measured",
            ),
            1e-6,
        )
        snap = stats.snapshot()
        assert snap["plans"] == 2
        assert snap["fallbacks"] == 1
        assert snap["decisions"] == {"serial": 1, "threads": 1}
        assert snap["predicted_ns"] == pytest.approx(500.0)
        assert snap["actual_ns"] == pytest.approx(1000.0)
        assert snap["last"]["strategy"] == "threads"


# ----------------------------------------------------------------------
class TestExecutorIntegration:
    @pytest.fixture()
    def index(self):
        fp, ids, tcs = make_records(600, seed=3)
        store = FingerprintStore(fp, ids, tcs)
        return S3Index(store, model=NormalDistortionModel(NDIMS, SIGMA))

    def test_planner_mode_validation(self):
        for mode in PLANNER_MODES:
            QueryOptions(planner=mode)
        with pytest.raises(ConfigurationError):
            QueryOptions(planner="vibes")

    def test_snapshot_reports_decisions(self, index):
        queries = index.store.fingerprints[:8].astype(np.float64)
        with BatchQueryExecutor(
            index, options=QueryOptions(alpha=0.8)
        ) as executor:
            executor.query_batch(queries)
            snap = executor.planner_snapshot()
        assert snap["mode"] == "auto"
        assert snap["plans"] >= 1
        assert sum(snap["decisions"].values()) == snap["plans"]
        assert snap["executor"] == "auto"

    def test_fixed_mode_never_measures(self, index):
        queries = index.store.fingerprints[:4].astype(np.float64)
        with BatchQueryExecutor(
            index, options=QueryOptions(alpha=0.8, planner="fixed")
        ) as executor:
            assert executor.planner_calibration() is None
            executor.query_batch(queries)
            snap = executor.planner_snapshot()
        assert snap["calibration"] is None
        assert snap["fallbacks"] == snap["plans"]

    def test_explicit_executor_bypasses_planner(self, index):
        queries = index.store.fingerprints[:4].astype(np.float64)
        opts = QueryOptions(alpha=0.8, workers=2, executor="threads")
        with BatchQueryExecutor(index, options=opts) as executor:
            plan = executor.plan_batch()
        assert plan.strategy == "threads"
        assert plan.source == "explicit"

    def test_rolling_refresh_observes_big_batches(self, index):
        # Feed a fat synthetic observation through the same entry point
        # the engine uses and confirm the process-wide calibration moved.
        cal = make_calibration()
        set_calibration(cal)
        rows = 10 * OBSERVE_MIN_ROWS
        updated = cal.observe("serial", rows, rows * 80.0 * 1e-9)
        set_calibration(updated)
        assert get_calibration().source == "observed"
        assert get_calibration().gather_ns_per_row > cal.gather_ns_per_row

    def test_plan_is_frozen(self):
        plan = ExecutorPlan("serial", 10)
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.strategy = "threads"


class TestColdFetchTerm:
    """The tiered-storage term of the cost model (docs/storage-tiers.md)."""

    def test_cold_bytes_floor_every_strategy(self):
        cal = make_calibration(cold_fetch_ns_per_byte=10.0)
        local = cal.predict_ns(1000, workers=2)
        # A cold fetch slower than every local strategy dominates all
        # three predictions (overlap model: max, not sum).
        heavy = cal.predict_ns(1000, workers=2, cold_bytes=10 ** 9)
        assert all(heavy[s] == 10.0 * 10 ** 9 for s in heavy)
        # A negligible cold share leaves the local predictions alone.
        light = cal.predict_ns(1000, workers=2, cold_bytes=1)
        assert light == pytest.approx(local)

    def test_observe_cold_ema(self):
        cal = make_calibration(cold_fetch_ns_per_byte=1.0)
        # 1 MB in 10 ms = 10 ns/byte measured.
        updated = cal.observe_cold(1_000_000, 0.01)
        expected = 0.8 * 1.0 + 0.2 * 10.0
        assert updated.cold_fetch_ns_per_byte == pytest.approx(expected)
        assert updated.source == "observed"
        assert updated.observations == cal.observations + 1

    def test_observe_cold_ignores_tiny_batches(self):
        cal = make_calibration(cold_fetch_ns_per_byte=1.0)
        assert cal.observe_cold(100, 0.5) is cal
        assert cal.observe_cold(10 ** 6, 0.0) is cal

    def test_default_field_keeps_schema_compatibility(self):
        # Sidecars written before the cold term existed must still
        # parse: the field is defaulted and the schema unchanged.
        cal = make_calibration()
        payload = cal.to_json()
        del payload["cold_fetch_ns_per_byte"]
        again = Calibration.from_json(payload)
        assert again.cold_fetch_ns_per_byte == 1.0
