"""Tests for the batched multi-query engine (:mod:`repro.index.batch`).

The load-bearing property: every batched path — multi-query block
selection, coalesced scanning, segmented fan-out, the executor — must be
**bit-identical** to the sequential per-query path started from the same
warm-start cache state.  Hypothesis drives random batches (with
duplicates), alphas and depths through both paths and compares exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distortion.model import NormalDistortionModel, PerComponentNormalModel
from repro.errors import ConfigurationError
from repro.hilbert import HilbertCurve
from repro.index.batch import (
    BatchQueryExecutor,
    coalesce_ranges,
    query_batch_monolithic,
    query_batch_segmented,
)
from repro.index.filtering import (
    select_blocks_threshold,
    select_blocks_threshold_multi,
    statistical_blocks,
    statistical_blocks_batch_cached,
    statistical_blocks_cached,
    statistical_blocks_multi,
    threshold_cache_key,
)
from repro.index.s3 import S3Index
from repro.index.segmented import SegmentedS3Index
from repro.index.store import FingerprintStore

NDIMS = 8
SIGMA = 10.0


def make_records(n, seed=0, ndims=NDIMS):
    rng = np.random.default_rng(seed)
    centers = rng.integers(40, 216, size=(max(n // 100, 4), ndims))
    assign = rng.integers(0, centers.shape[0], size=n)
    fp = np.clip(
        centers[assign] + rng.normal(0, 10, (n, ndims)), 0, 255
    ).astype(np.uint8)
    ids = rng.integers(0, 50, n).astype(np.uint32)
    tcs = rng.uniform(0, 500, n)
    return fp, ids, tcs


def result_key(result):
    return (
        result.rows.tolist(),
        result.ids.tolist(),
        result.timecodes.tolist(),
        result.fingerprints.tobytes(),
    )


def selection_key(sel):
    return (
        sel.prefixes.tolist(),
        sel.probabilities.tobytes(),
        sel.threshold,
        sel.total_probability,
        sel.nodes_visited,
        sel.descents,
    )


# ----------------------------------------------------------------------
class TestCoalesceRanges:
    def test_empty(self):
        assert coalesce_ranges([]) == []
        assert coalesce_ranges([[], []]) == []

    def test_disjoint_stay_separate(self):
        assert coalesce_ranges([[(0, 3)], [(10, 12)]]) == [(0, 3), (10, 12)]

    def test_overlap_and_touch_merge(self):
        assert coalesce_ranges([[(0, 5), (8, 9)], [(3, 8)]]) == [(0, 9)]
        assert coalesce_ranges([[(0, 5)], [(5, 9)]]) == [(0, 9)]

    def test_containment(self):
        assert coalesce_ranges([[(0, 100)], [(10, 20), (30, 40)]]) == [(0, 100)]

    @given(
        st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=400),
                    st.integers(min_value=1, max_value=50),
                ),
                min_size=0, max_size=8,
            ),
            min_size=1, max_size=6,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_union_semantics(self, raw):
        # Per-query lists must be sorted and disjoint, as block_row_ranges
        # produces them; build that shape from the raw (start, len) pairs.
        range_lists = []
        for pairs in raw:
            merged = []
            for s, ln in sorted(pairs):
                e = s + ln
                if merged and s <= merged[-1][1]:
                    merged[-1] = (merged[-1][0], max(e, merged[-1][1]))
                else:
                    merged.append((s, e))
            range_lists.append(merged)
        union = coalesce_ranges(range_lists)
        # Exact cover of the union of all rows.
        rows = set()
        for ranges in range_lists:
            for s, e in ranges:
                rows.update(range(s, e))
        covered = set()
        for s, e in union:
            assert s < e
            covered.update(range(s, e))
        assert covered >= rows
        # Sorted, disjoint, non-touching output.
        for (s1, e1), (s2, e2) in zip(union, union[1:]):
            assert e1 < s2
        # The demux invariant: every input range inside exactly one
        # union range.
        for ranges in range_lists:
            for s, e in ranges:
                assert any(us <= s and e <= ue for us, ue in union)


# ----------------------------------------------------------------------
class TestMultiSelectors:
    CURVE = HilbertCurve(ndims=NDIMS, order=8)
    MODEL = NormalDistortionModel(NDIMS, SIGMA)

    def queries(self, n, seed=0, duplicates=True):
        rng = np.random.default_rng(seed)
        q = rng.uniform(0.0, 255.0, size=(n, NDIMS))
        if duplicates and n >= 4:
            q[1] = q[n - 1]
        return q

    @given(
        n=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=100),
        threshold=st.floats(min_value=1e-6, max_value=0.3),
        depth=st.sampled_from([8, 16, 24]),
    )
    @settings(max_examples=25, deadline=None)
    def test_threshold_selector_bit_identical(self, n, seed, threshold, depth):
        queries = self.queries(n, seed)
        ths = np.full(n, threshold)
        multi = select_blocks_threshold_multi(
            queries, self.MODEL, self.CURVE, depth, ths
        )
        for i in range(n):
            solo = select_blocks_threshold(
                queries[i], self.MODEL, self.CURVE, depth, threshold
            )
            assert selection_key(solo) == selection_key(multi[i])

    @given(
        n=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=100),
        alpha=st.sampled_from([0.5, 0.8, 0.9, 0.99]),
        depth=st.sampled_from([8, 16, 24]),
    )
    @settings(max_examples=20, deadline=None)
    def test_statistical_blocks_bit_identical(self, n, seed, alpha, depth):
        queries = self.queries(n, seed)
        multi = statistical_blocks_multi(
            queries, self.MODEL, self.CURVE, depth, alpha
        )
        for i in range(n):
            solo = statistical_blocks(
                queries[i], self.MODEL, self.CURVE, depth, alpha
            )
            assert selection_key(solo) == selection_key(multi[i])

    def test_batch_of_one_reproduces_the_sequential_chain(self):
        queries = self.queries(10, seed=3)
        cache_seq, cache_batch = {}, {}
        for q in queries:
            solo = statistical_blocks_cached(
                q, self.MODEL, self.CURVE, 16, 0.9, cache_seq
            )
            [one] = statistical_blocks_batch_cached(
                q[None, :], self.MODEL, self.CURVE, 16, 0.9, cache_batch
            )
            assert selection_key(solo) == selection_key(one)
        assert cache_seq == cache_batch

    def test_batch_shares_one_warm_start(self):
        queries = self.queries(6, seed=4)
        cache = {}
        statistical_blocks_cached(
            queries[0], self.MODEL, self.CURVE, 16, 0.9, cache
        )
        frozen = dict(cache)
        batch = statistical_blocks_batch_cached(
            queries, self.MODEL, self.CURVE, 16, 0.9, cache
        )
        for i in range(len(queries)):
            solo = statistical_blocks_cached(
                queries[i], self.MODEL, self.CURVE, 16, 0.9, dict(frozen)
            )
            assert selection_key(solo) == selection_key(batch[i])
        key = threshold_cache_key(0.9, 16, self.MODEL)
        assert cache[key] == batch[-1].threshold

    def test_empty_batch(self):
        assert statistical_blocks_multi(
            np.empty((0, NDIMS)), self.MODEL, self.CURVE, 16, 0.9
        ) == []

    def test_query_shape_validated(self):
        with pytest.raises(ConfigurationError):
            select_blocks_threshold_multi(
                np.zeros((2, NDIMS + 1)), self.MODEL, self.CURVE, 8,
                np.full(2, 0.01),
            )
        with pytest.raises(ConfigurationError):
            select_blocks_threshold_multi(
                np.zeros((2, NDIMS)), self.MODEL, self.CURVE, 8,
                np.full(3, 0.01),
            )
        with pytest.raises(ConfigurationError):
            select_blocks_threshold_multi(
                np.zeros((2, NDIMS)), self.MODEL, self.CURVE, 8,
                np.array([0.01, 1.5]),
            )


# ----------------------------------------------------------------------
class TestCacheKey:
    """Satellite: the warm-start cache must be keyed by model identity."""

    def test_distinct_models_do_not_poison_each_other(self):
        curve = HilbertCurve(ndims=NDIMS, order=8)
        wide = NormalDistortionModel(NDIMS, 40.0)
        narrow = NormalDistortionModel(NDIMS, 2.0)
        q = np.full(NDIMS, 128.0)
        cache = {}
        statistical_blocks_cached(q, wide, curve, 16, 0.9, cache)
        statistical_blocks_cached(q, narrow, curve, 16, 0.9, cache)
        # Both models keep their own warm-start entry.
        assert threshold_cache_key(0.9, 16, wide) in cache
        assert threshold_cache_key(0.9, 16, narrow) in cache
        assert len(cache) == 2
        # Interleaving models gives the same selections as dedicated
        # caches — no cross-model warm start leaks through.
        solo_wide = statistical_blocks_cached(q, wide, curve, 16, 0.9, {})
        statistical_blocks_cached(q, wide, curve, 16, 0.9, {})
        shared = {}
        statistical_blocks_cached(q, narrow, curve, 16, 0.9, shared)
        mixed = statistical_blocks_cached(q, wide, curve, 16, 0.9, shared)
        assert mixed.threshold == solo_wide.threshold

    def test_equal_models_share_warm_start(self):
        a = NormalDistortionModel(NDIMS, SIGMA)
        b = NormalDistortionModel(NDIMS, SIGMA)
        assert threshold_cache_key(0.8, 16, a) == threshold_cache_key(0.8, 16, b)
        pa = PerComponentNormalModel(np.full(NDIMS, SIGMA))
        pb = PerComponentNormalModel(np.full(NDIMS, SIGMA))
        assert threshold_cache_key(0.8, 16, pa) == threshold_cache_key(0.8, 16, pb)
        assert threshold_cache_key(0.8, 16, a) != threshold_cache_key(0.8, 16, pa)


# ----------------------------------------------------------------------
class TestMonolithicBatch:
    N = 4000

    @pytest.fixture(scope="class")
    def index(self):
        fp, ids, tcs = make_records(self.N, seed=7)
        return S3Index(
            FingerprintStore(fp, ids, tcs),
            model=NormalDistortionModel(NDIMS, SIGMA),
        )

    def batch_queries(self, index, n, seed):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, len(index), n)
        q = index.store.fingerprints[rows].astype(np.float64)
        q += rng.normal(0, 4.0, q.shape)
        q = np.clip(q, 0.0, 255.0)
        if n >= 4:
            q[2] = q[n - 1]  # duplicate queries in one batch
        return q

    @given(
        n=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=50),
        alpha=st.sampled_from([0.5, 0.8, 0.95]),
        workers=st.sampled_from([1, 3]),
    )
    @settings(max_examples=15, deadline=None)
    def test_equals_sequential(self, index, n, seed, alpha, workers):
        queries = self.batch_queries(index, n, seed)
        index.reset_threshold_cache()
        batch = index.statistical_query_batch(queries, alpha, workers=workers)
        for i in range(n):
            index.reset_threshold_cache()
            solo = index.statistical_query(queries[i], alpha)
            assert result_key(solo) == result_key(batch[i])
            assert solo.stats.blocks_selected == batch[i].stats.blocks_selected
            assert solo.stats.sections_scanned == batch[i].stats.sections_scanned
            assert solo.stats.rows_scanned == batch[i].stats.rows_scanned
            assert solo.stats.results == batch[i].stats.results
            assert solo.stats.nodes_visited == batch[i].stats.nodes_visited
            assert solo.stats.descents == batch[i].stats.descents

    def test_stats_results_populated_everywhere(self, index):
        """Satellite audit: every query path reports ``stats.results``."""
        q = index.store.fingerprints[11].astype(np.float64)
        r = index.statistical_query(q, 0.8)
        assert r.stats.results == len(r)
        r = index.range_query(q, 25.0)
        assert r.stats.results == len(r)
        r = index.window_query(q - 10, q + 10)
        assert r.stats.results == len(r)
        [r] = index.statistical_query_batch(q[None, :], 0.8)
        assert r.stats.results == len(r) > 0

    def test_batch_stats_account_coalescing(self, index):
        queries = self.batch_queries(index, 16, seed=9)
        index.reset_threshold_cache()
        results, batch = query_batch_monolithic(index, queries, 0.8)
        assert batch.queries == 16 and batch.batches == 1
        assert batch.logical_rows == sum(len(r) for r in results)
        assert batch.unique_rows <= batch.logical_rows or batch.logical_rows == 0
        assert batch.coalescing_factor >= 1.0 or batch.logical_rows == 0
        assert batch.results == batch.logical_rows

    def test_executor_chunks_match_single_batches(self, index):
        queries = self.batch_queries(index, 10, seed=13)
        index.reset_threshold_cache()
        ex = BatchQueryExecutor(index, 0.8, batch_size=4, workers=2)
        chunked = ex.query_all(queries)
        assert ex.stats.batches == 3 and ex.stats.queries == 10
        index.reset_threshold_cache()
        expected = []
        for s in range(0, 10, 4):
            expected.extend(
                index.statistical_query_batch(queries[s:s + 4], 0.8)
            )
        for a, b in zip(expected, chunked):
            assert result_key(a) == result_key(b)

    def test_executor_validates_config(self, index):
        with pytest.raises(ConfigurationError):
            BatchQueryExecutor(index, 0.8, batch_size=0)
        with pytest.raises(ConfigurationError):
            BatchQueryExecutor(index, 0.8, workers=0)

    def test_supports_coalesced_scans(self, index):
        assert index.supports_coalesced_scans is True


# ----------------------------------------------------------------------
class TestSegmentedBatch:
    N = 3000

    def build_segmented(self, tmp_path, cuts, leave_pending=True):
        fp, ids, tcs = make_records(self.N, seed=21)
        model = NormalDistortionModel(NDIMS, SIGMA)
        seg = SegmentedS3Index.create(
            tmp_path, ndims=NDIMS, model=model,
            flush_rows=10**9, auto_compact=False, sync=False,
        )
        bounds = [0, *sorted(cuts), self.N]
        for i, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
            if hi > lo:
                seg.add(fp[lo:hi], ids[lo:hi], tcs[lo:hi])
                if not (leave_pending and hi == self.N):
                    seg.flush()
        return seg, fp

    @given(
        cuts=st.lists(
            st.integers(min_value=1, max_value=2999),
            min_size=0, max_size=4,
        ),
        leave_pending=st.booleans(),
        n=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=50),
        alpha=st.sampled_from([0.5, 0.8, 0.95]),
        depth=st.sampled_from([None, 8, 12]),
        workers=st.sampled_from([1, 3]),
    )
    @settings(max_examples=12, deadline=None)
    def test_query_batch_equals_per_query(
        self, tmp_path_factory, cuts, leave_pending, n, seed, alpha,
        depth, workers,
    ):
        tmp = tmp_path_factory.mktemp("batchseg")
        seg, fp = self.build_segmented(tmp / "seg", cuts, leave_pending)
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, self.N, n)
        queries = np.clip(
            fp[rows].astype(np.float64) + rng.normal(0, 4.0, (n, NDIMS)),
            0.0, 255.0,
        )
        if n >= 3:
            queries[0] = queries[n - 1]  # duplicates in the batch

        seg.reset_threshold_cache()
        batch = seg.statistical_query_batch(
            queries, alpha, depth=depth, workers=workers
        )
        for i in range(n):
            seg.reset_threshold_cache()
            solo = seg.statistical_query(queries[i], alpha, depth=depth)
            assert result_key(solo) == result_key(batch[i])
            assert solo.stats.results == batch[i].stats.results
            assert solo.stats.rows_scanned == batch[i].stats.rows_scanned
            assert solo.stats.sections_scanned == batch[i].stats.sections_scanned
            assert solo.stats.segments_scanned == batch[i].stats.segments_scanned
            assert (
                solo.stats.memtable_rows_scanned
                == batch[i].stats.memtable_rows_scanned
            )
            assert len(solo.stats.per_segment) == len(batch[i].stats.per_segment)
        seg.close()

    def test_segmented_stats_results_populated(self, tmp_path):
        seg, fp = self.build_segmented(tmp_path / "seg", [1000, 2000])
        q = fp[5].astype(np.float64)
        r = seg.statistical_query(q, 0.8)
        assert r.stats.results == len(r) > 0
        [rb] = seg.statistical_query_batch(q[None, :], 0.8)
        assert rb.stats.results == len(rb) > 0
        rr = seg.range_query(q, 25.0)
        assert rr.stats.results == len(rr)
        assert seg.supports_coalesced_scans is True
        seg.close()

    def test_executor_picks_segmented_engine(self, tmp_path):
        seg, fp = self.build_segmented(tmp_path / "seg", [1500])
        queries = fp[:8].astype(np.float64)
        seg.reset_threshold_cache()
        ex = BatchQueryExecutor(seg, 0.8, batch_size=8)
        got = ex.query_all(queries)
        seg.reset_threshold_cache()
        _, batch = query_batch_segmented(seg, queries, 0.8)
        assert ex.stats.queries == 8
        assert len(got) == 8
        assert batch.queries == 8
        seg.close()
