"""Tests for the Hilbert-sorted layout and block→row-range lookup."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hilbert.butz import HilbertCurve
from repro.index.table import HilbertLayout


@pytest.fixture(scope="module")
def layout_and_points():
    rng = np.random.default_rng(0)
    points = rng.integers(0, 256, size=(5000, 5), dtype=np.uint8)
    layout = HilbertLayout.build(points, order=8, key_levels=3)
    return layout, points


class TestBuild:
    def test_keys_sorted(self, layout_and_points):
        layout, _ = layout_and_points
        assert np.all(np.diff(layout.keys.astype(np.int64)) >= 0)

    def test_permutation_is_a_permutation(self, layout_and_points):
        layout, points = layout_and_points
        assert sorted(layout.permutation.tolist()) == list(range(len(points)))

    def test_keys_match_scalar_curve(self, layout_and_points):
        layout, points = layout_and_points
        hc = HilbertCurve(5, 8)
        for i in range(0, 5000, 517):
            row = layout.permutation[i]
            assert int(layout.keys[i]) == hc.prefix_key(points[row], 3)

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            HilbertLayout.build(np.zeros(10), order=8, key_levels=2)

    def test_key_bits(self, layout_and_points):
        layout, _ = layout_and_points
        assert layout.key_bits == 15
        assert layout.max_depth == 15


class TestBlockRowRanges:
    def test_ranges_cover_exactly_the_block_members(self, layout_and_points):
        layout, points = layout_and_points
        depth = 6
        shift = layout.key_bits - depth
        # Pick a few blocks that actually contain points.
        populated = np.unique(layout.keys >> np.uint64(shift))[:5]
        ranges = layout.block_row_ranges(populated, depth)
        rows = layout.gather_rows(ranges)
        got = set(rows.tolist())
        expected = {
            i
            for i in range(len(points))
            if (int(layout.keys[i]) >> shift) in set(populated.tolist())
        }
        assert got == expected

    def test_adjacent_blocks_merge(self, layout_and_points):
        layout, _ = layout_and_points
        prefixes = np.array([4, 5, 6], dtype=np.uint64)  # contiguous on curve
        ranges = layout.block_row_ranges(prefixes, 5)
        assert len(ranges) <= 1 or all(
            ranges[i][1] < ranges[i + 1][0] for i in range(len(ranges) - 1)
        )

    def test_empty_selection(self, layout_and_points):
        layout, _ = layout_and_points
        assert layout.block_row_ranges(np.array([], dtype=np.uint64), 5) == []
        assert layout.gather_rows([]).size == 0

    def test_rejects_depth_beyond_keys(self, layout_and_points):
        layout, _ = layout_and_points
        with pytest.raises(ConfigurationError):
            layout.block_row_ranges(np.array([0], dtype=np.uint64), 16)

    def test_full_coverage_at_depth_zero_equivalent(self, layout_and_points):
        layout, points = layout_and_points
        # All 2 blocks of depth 1 cover every row.
        ranges = layout.block_row_ranges(np.array([0, 1], dtype=np.uint64), 1)
        assert layout.gather_rows(ranges).size == len(points)


class TestCurveSections:
    def test_sections_partition_rows(self, layout_and_points):
        layout, points = layout_and_points
        for r in (0, 2, 4):
            sections = layout.curve_sections(r)
            assert len(sections) == 1 << r
            assert sections[0][0] == 0
            assert sections[-1][1] == len(points)
            for (s0, e0), (s1, e1) in zip(sections, sections[1:]):
                assert e0 == s1

    def test_section_split_for_memory(self, layout_and_points):
        layout, points = layout_and_points
        r = layout.section_split_for_memory(len(points) // 4)
        fullest = max(e - s for s, e in layout.curve_sections(r))
        assert fullest <= len(points) // 4
        if r > 0:
            prev_fullest = max(
                e - s for s, e in layout.curve_sections(r - 1)
            )
            assert prev_fullest > len(points) // 4

    def test_r_zero_when_everything_fits(self, layout_and_points):
        layout, points = layout_and_points
        assert layout.section_split_for_memory(len(points)) == 0

    def test_rejects_impossible_budget(self, layout_and_points):
        layout, _ = layout_and_points
        with pytest.raises(ConfigurationError):
            layout.section_split_for_memory(0)

    def test_rejects_bad_r(self, layout_and_points):
        layout, _ = layout_and_points
        with pytest.raises(ConfigurationError):
            layout.curve_sections(-1)
        with pytest.raises(ConfigurationError):
            layout.curve_sections(layout.key_bits + 1)
