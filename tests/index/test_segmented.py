"""Tests for the segmented live index: WAL, manifest, compaction, LSM.

Includes the two acceptance properties of the subsystem:

* **crash recovery** — records added but never flushed survive a crash
  (simulated by abandoning the index object, appending torn bytes to the
  WAL, or both) and are fully restored by :meth:`SegmentedS3Index.open`;
* **monolithic equivalence** — for any split of a corpus into segments
  (plus a memtable remainder), statistical and ε-range queries return
  exactly the result set of a monolithic :class:`S3Index` over the same
  records.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distortion.model import NormalDistortionModel
from repro.errors import ConfigurationError, IndexError_, WALError
from repro.index.s3 import S3Index
from repro.index.segmented import (
    CompactionPolicy,
    Manifest,
    SegmentedQueryStats,
    SegmentedS3Index,
    SegmentMeta,
    WriteAheadLog,
    replay,
)
from repro.index.store import FingerprintStore

NDIMS = 8
SIGMA = 10.0


def make_records(n, seed=0, ndims=NDIMS):
    rng = np.random.default_rng(seed)
    centers = rng.integers(40, 216, size=(max(n // 100, 4), ndims))
    assign = rng.integers(0, centers.shape[0], size=n)
    fp = np.clip(
        centers[assign] + rng.normal(0, 10, (n, ndims)), 0, 255
    ).astype(np.uint8)
    ids = rng.integers(0, 50, n).astype(np.uint32)
    tcs = rng.uniform(0, 500, n)
    return fp, ids, tcs


def result_key(result):
    return sorted(zip(
        result.ids.tolist(),
        result.timecodes.tolist(),
        [tuple(fp) for fp in result.fingerprints.tolist()],
    ))


# ----------------------------------------------------------------------
class TestWAL:
    def test_append_replay_roundtrip(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.create(path, NDIMS)
        batches = [make_records(n, seed=n) for n in (5, 1, 17)]
        for fp, ids, tcs in batches:
            assert wal.append(fp, ids, tcs) == len(ids)
        wal.close()
        recovered = replay(path)
        assert len(recovered) == 3
        for (fp, ids, tcs), (rfp, rids, rtcs) in zip(batches, recovered):
            assert np.array_equal(fp, rfp)
            assert np.array_equal(ids, rids)
            assert np.array_equal(tcs, rtcs)

    def test_empty_batch_is_noop(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog.create(path, NDIMS) as wal:
            added = wal.append(
                np.empty((0, NDIMS), dtype=np.uint8),
                np.empty(0, dtype=np.uint32),
                np.empty(0, dtype=np.float64),
            )
        assert added == 0
        assert replay(path) == []

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog.create(path, NDIMS) as wal:
            fp, ids, tcs = make_records(7, seed=1)
            wal.append(fp, ids, tcs)
        # A crash mid-append: record header + half a payload.
        with open(path, "ab") as fh:
            fh.write(b"\x03\x00\x00\x00" + b"\xab" * 10)
        recovered = replay(path)
        assert len(recovered) == 1
        assert np.array_equal(recovered[0][0], fp)

    def test_corrupt_crc_stops_replay(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog.create(path, NDIMS) as wal:
            wal.append(*make_records(4, seed=2))
            wal.append(*make_records(4, seed=3))
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip a byte in the last record's payload
        path.write_bytes(raw)
        assert len(replay(path)) == 1

    def test_open_truncates_tail_and_appends(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog.create(path, NDIMS) as wal:
            wal.append(*make_records(4, seed=2))
        with open(path, "ab") as fh:
            fh.write(b"torn")
        with WriteAheadLog.open(path) as wal:
            wal.append(*make_records(6, seed=3))
        recovered = replay(path)
        assert [len(r[1]) for r in recovered] == [4, 6]

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOPE" + b"\x00" * 8)
        with pytest.raises(WALError):
            replay(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(WALError):
            replay(tmp_path / "missing.log")

    def test_rejects_wrong_dimension(self, tmp_path):
        with WriteAheadLog.create(tmp_path / "wal.log", NDIMS) as wal:
            fp, ids, tcs = make_records(3, seed=1, ndims=NDIMS + 1)
            with pytest.raises(WALError):
                wal.append(fp, ids, tcs)


# ----------------------------------------------------------------------
class TestManifest:
    def test_save_load_roundtrip(self, tmp_path):
        manifest = Manifest(
            ndims=20, order=8, key_levels=2, depth=18, sigma=20.0,
            next_seq=5, wal="wal-000004.log",
            segments=[SegmentMeta("seg-000001", 100),
                      SegmentMeta("seg-000003", 250)],
        )
        manifest.save(tmp_path)
        loaded = Manifest.load(tmp_path)
        assert loaded == manifest
        assert not list(tmp_path.glob("*.tmp"))  # atomic rewrite cleaned up

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(IndexError_):
            Manifest.load(tmp_path)

    def test_load_corrupt_raises(self, tmp_path):
        (tmp_path / "MANIFEST.json").write_text("{not json")
        with pytest.raises(IndexError_):
            Manifest.load(tmp_path)

    def test_load_bad_format_raises(self, tmp_path):
        (tmp_path / "MANIFEST.json").write_text('{"format": 99}')
        with pytest.raises(IndexError_):
            Manifest.load(tmp_path)


# ----------------------------------------------------------------------
class TestCompactionPolicy:
    def test_under_cap_is_noop(self):
        policy = CompactionPolicy(max_segments=4)
        assert policy.plan([100, 200, 300, 400]) == []

    def test_over_cap_merges_smallest(self):
        policy = CompactionPolicy(max_segments=3)
        # 5 segments -> merge the 3 smallest to land at 3.
        assert policy.plan([500, 10, 400, 20, 30]) == [1, 3, 4]

    def test_merge_is_at_least_min_merge(self):
        policy = CompactionPolicy(max_segments=3, min_merge=3)
        assert len(policy.plan([10, 20, 30, 40])) == 3

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            CompactionPolicy(max_segments=0)
        with pytest.raises(ConfigurationError):
            CompactionPolicy(min_merge=1)


# ----------------------------------------------------------------------
def make_index(directory, **overrides):
    kwargs = dict(
        ndims=NDIMS,
        depth=14,
        model=NormalDistortionModel(NDIMS, SIGMA),
        flush_rows=100_000,
        auto_compact=False,
    )
    kwargs.update(overrides)
    return SegmentedS3Index.create(directory, **kwargs)


class TestLifecycle:
    def test_create_rejects_existing_directory(self, tmp_path):
        make_index(tmp_path / "idx").close()
        with pytest.raises(IndexError_):
            make_index(tmp_path / "idx")

    def test_create_validates_parameters(self, tmp_path):
        with pytest.raises(ConfigurationError):
            make_index(tmp_path / "a", depth=0)
        with pytest.raises(ConfigurationError):
            make_index(tmp_path / "b", depth=99)
        with pytest.raises(ConfigurationError):
            make_index(tmp_path / "c", model=NormalDistortionModel(4, 5.0))
        with pytest.raises(ConfigurationError):
            make_index(tmp_path / "d", flush_rows=0)

    def test_open_non_index_raises(self, tmp_path):
        with pytest.raises(IndexError_):
            SegmentedS3Index.open(tmp_path)

    def test_auto_flush_on_threshold(self, tmp_path):
        index = make_index(tmp_path / "idx", flush_rows=100)
        for i in range(5):
            index.add(*make_records(40, seed=i))
        # The memtable seals at 120 rows (3 batches); 80 stay pending.
        assert index.num_segments == 1
        assert index.pending_rows == 80
        assert len(index) == 200
        index.add(*make_records(40, seed=5))
        assert index.num_segments == 2
        assert index.pending_rows == 0
        index.close()

    def test_flush_empty_memtable_is_noop(self, tmp_path):
        index = make_index(tmp_path / "idx")
        assert index.flush() is None
        index.close()

    def test_record_spans_segments_and_memtable(self, tmp_path):
        index = make_index(tmp_path / "idx")
        fp, ids, tcs = make_records(30, seed=7)
        index.add(fp, ids, tcs)
        index.flush()
        fp2, ids2, tcs2 = make_records(10, seed=8)
        index.add(fp2, ids2, tcs2)
        # Sealed rows are curve-sorted; memtable rows keep arrival order.
        got_fp, got_id, got_tc = index.record(32)
        assert got_id == ids2[2]
        assert got_tc == pytest.approx(tcs2[2])
        assert np.array_equal(got_fp, fp2[2])
        with pytest.raises(ConfigurationError):
            index.record(40)
        index.close()


class TestCrashRecovery:
    def test_unflushed_records_survive_reopen(self, tmp_path):
        """Kill after `add` but before flush -> WAL replay restores all."""
        directory = tmp_path / "idx"
        index = make_index(directory)
        sealed = make_records(120, seed=1)
        index.add(*sealed)
        index.flush()
        pending = [make_records(n, seed=10 + n) for n in (25, 3, 60)]
        for batch in pending:
            index.add(*batch)
        # Simulated crash: the object is abandoned without flush/close.
        del index

        reopened = SegmentedS3Index.open(directory)
        assert reopened.num_segments == 1
        assert reopened.pending_rows == 25 + 3 + 60
        assert len(reopened) == 120 + 88
        # Every pending record is queryable at distance zero.
        for fp, ids, tcs in pending:
            result = reopened.range_query(fp[0].astype(np.float64), 0.0)
            assert len(result) >= 1
        reopened.close()

    def test_reopen_with_torn_wal_tail(self, tmp_path):
        directory = tmp_path / "idx"
        index = make_index(directory)
        batch = make_records(40, seed=3)
        index.add(*batch)
        wal_path = directory / index.manifest.wal
        index.close()
        with open(wal_path, "ab") as fh:
            fh.write(b"\x05\x00\x00\x00 torn half-record")

        reopened = SegmentedS3Index.open(directory)
        assert reopened.pending_rows == 40
        # The torn tail was truncated: appending + reopening still works.
        reopened.add(*make_records(5, seed=4))
        reopened.close()
        again = SegmentedS3Index.open(directory)
        assert again.pending_rows == 45
        again.close()

    def test_orphan_files_are_collected(self, tmp_path):
        directory = tmp_path / "idx"
        index = make_index(directory)
        index.add(*make_records(50, seed=5))
        index.flush()
        index.close()
        # A crash mid-compaction leaves an unreferenced segment + wal.
        orphan_seg = directory / "seg-999999.store"
        orphan_wal = directory / "wal-999999.log"
        orphan_tmp = directory / "MANIFEST.json.tmp"
        FingerprintStore(*make_records(10, seed=6)).save(orphan_seg)
        orphan_wal.write_bytes(b"junk")
        orphan_tmp.write_text("{}")

        reopened = SegmentedS3Index.open(directory)
        assert not orphan_seg.exists()
        assert not orphan_wal.exists()
        assert not orphan_tmp.exists()
        assert len(reopened) == 50
        reopened.close()

    def test_segment_manifest_mismatch_raises(self, tmp_path):
        directory = tmp_path / "idx"
        index = make_index(directory)
        index.add(*make_records(50, seed=5))
        index.flush()
        name = index.manifest.segments[0].name
        index.close()
        FingerprintStore(*make_records(10, seed=6)).save(
            directory / (name + ".store")
        )
        with pytest.raises(IndexError_):
            SegmentedS3Index.open(directory)


class TestCompaction:
    def test_force_merges_everything(self, tmp_path):
        index = make_index(tmp_path / "idx")
        for i in range(4):
            index.add(*make_records(50, seed=i))
            index.flush()
        assert index.num_segments == 4
        result = index.compact(force=True)
        assert result.merged_segments == 4
        assert result.merged_rows == 200
        assert index.num_segments == 1
        assert len(index) == 200
        # Old segment files are gone; the new one is loadable.
        stores = sorted(p.name for p in (tmp_path / "idx").glob("*.store"))
        assert stores == [result.segment_name + ".store"]
        index.close()

    def test_policy_keeps_segment_count_bounded(self, tmp_path):
        index = make_index(
            tmp_path / "idx", flush_rows=50,
            policy=CompactionPolicy(max_segments=3), auto_compact=True,
        )
        for i in range(12):
            index.add(*make_records(50, seed=i))
        assert index.num_segments <= 3
        assert len(index) == 600
        index.close()

    def test_compaction_preserves_results(self, tmp_path):
        index = make_index(tmp_path / "idx")
        batches = [make_records(80, seed=i) for i in range(3)]
        for batch in batches:
            index.add(*batch)
            index.flush()
        query = batches[1][0][11].astype(np.float64)
        index.reset_threshold_cache()
        before = result_key(index.statistical_query(query, 0.8))
        index.compact(force=True)
        index.reset_threshold_cache()
        after = result_key(index.statistical_query(query, 0.8))
        assert before == after
        assert SegmentedS3Index.open(tmp_path / "idx").num_segments == 1
        index.close()

    def test_nothing_to_compact_returns_none(self, tmp_path):
        index = make_index(tmp_path / "idx")
        index.add(*make_records(30, seed=1))
        index.flush()
        assert index.compact() is None
        assert index.compact(force=True) is None  # single segment
        index.close()


class TestQueries:
    def test_empty_index_returns_empty(self, tmp_path):
        index = make_index(tmp_path / "idx")
        result = index.statistical_query(np.full(NDIMS, 128.0), 0.8)
        assert len(result) == 0
        result = index.range_query(np.full(NDIMS, 128.0), 30.0)
        assert len(result) == 0
        assert result.distances.size == 0
        index.close()

    def test_stats_aggregate_per_segment(self, tmp_path):
        index = make_index(tmp_path / "idx")
        for i in range(2):
            index.add(*make_records(200, seed=i))
            index.flush()
        index.add(*make_records(40, seed=9))
        fp, _, _ = make_records(1, seed=0)
        result = index.statistical_query(fp[0].astype(np.float64), 0.8)
        stats = result.stats
        assert isinstance(stats, SegmentedQueryStats)
        assert stats.segments_scanned == 2
        assert stats.memtable_rows_scanned == 40
        assert len(stats.per_segment) == 2
        assert stats.rows_scanned == sum(
            s.rows_scanned for s in stats.per_segment
        ) + 40
        assert stats.results == len(result)
        assert stats.blocks_selected > 0
        index.close()

    def test_missing_model_raises(self, tmp_path):
        index = make_index(tmp_path / "idx", model=None)
        index.add(*make_records(20, seed=1))
        with pytest.raises(ConfigurationError):
            index.statistical_query(np.full(NDIMS, 128.0), 0.8)
        result = index.statistical_query(
            np.full(NDIMS, 128.0), 0.8,
            model=NormalDistortionModel(NDIMS, SIGMA),
        )
        assert result.stats.blocks_selected > 0
        index.close()

    def test_model_rebuilt_from_manifest_on_open(self, tmp_path):
        index = make_index(tmp_path / "idx")
        index.add(*make_records(20, seed=1))
        index.close()
        reopened = SegmentedS3Index.open(tmp_path / "idx")
        assert reopened.model is not None
        assert reopened.model.sigma == pytest.approx(SIGMA)
        reopened.close()

    def test_depth_override_validated(self, tmp_path):
        index = make_index(tmp_path / "idx")
        index.add(*make_records(20, seed=1))
        with pytest.raises(ConfigurationError):
            index.statistical_query(np.full(NDIMS, 128.0), 0.8, depth=99)
        index.close()


# ----------------------------------------------------------------------
class TestMonolithicEquivalence:
    """Property: any segmentation answers exactly like one S3Index."""

    CORPUS = make_records(1200, seed=42)
    DEPTH = 12

    def build_pair(self, tmp_path, cuts, flush_last):
        fp, ids, tcs = self.CORPUS
        model = NormalDistortionModel(NDIMS, SIGMA)
        mono = S3Index(
            FingerprintStore(fp, ids, tcs), depth=self.DEPTH, model=model
        )
        seg = SegmentedS3Index.create(
            tmp_path, ndims=NDIMS, depth=self.DEPTH, model=model,
            flush_rows=10**9, auto_compact=False,
        )
        bounds = [0, *sorted(cuts), len(ids)]
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            if hi > lo:
                seg.add(fp[lo:hi], ids[lo:hi], tcs[lo:hi])
                if hi != len(ids) or flush_last:
                    seg.flush()
        return mono, seg

    @given(
        cuts=st.lists(
            st.integers(min_value=1, max_value=1199),
            min_size=0, max_size=5,
        ),
        flush_last=st.booleans(),
        query_row=st.integers(min_value=0, max_value=1199),
        alpha=st.sampled_from([0.5, 0.8, 0.95]),
    )
    @settings(max_examples=12, deadline=None)
    def test_statistical_and_range_equivalence(
        self, tmp_path_factory, cuts, flush_last, query_row, alpha
    ):
        tmp = tmp_path_factory.mktemp("equiv")
        mono, seg = self.build_pair(tmp / "seg", cuts, flush_last)
        fp, _, _ = self.CORPUS
        query = fp[query_row].astype(np.float64)

        mono.reset_threshold_cache()
        seg.reset_threshold_cache()
        a = mono.statistical_query(query, alpha)
        b = seg.statistical_query(query, alpha)
        assert result_key(a) == result_key(b)
        assert len(a) >= 1  # the planted row itself is always retrieved

        epsilon = 20.0
        ra = mono.range_query(query, epsilon)
        rb = seg.range_query(query, epsilon)
        assert result_key(ra) == result_key(rb)
        assert np.sort(ra.distances).tolist() == pytest.approx(
            np.sort(rb.distances).tolist()
        )
        seg.close()
