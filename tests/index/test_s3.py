"""Integration tests of the S³ index: statistical + range queries."""

import numpy as np
import pytest

from repro.distortion.model import NormalDistortionModel
from repro.distortion.radial import radius_for_expectation
from repro.errors import ConfigurationError, IndexError_
from repro.index.s3 import S3Index
from repro.index.seqscan import SequentialScanIndex
from repro.index.store import FingerprintStore


def clustered_store(n, ndims=8, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.integers(40, 216, size=(max(n // 200, 4), ndims))
    assign = rng.integers(0, centers.shape[0], size=n)
    pts = np.clip(centers[assign] + rng.normal(0, 10, (n, ndims)), 0, 255)
    return FingerprintStore(
        fingerprints=pts.astype(np.uint8),
        ids=rng.integers(0, 100, n).astype(np.uint32),
        timecodes=rng.uniform(0, 500, n),
    )


@pytest.fixture(scope="module")
def index():
    store = clustered_store(20_000)
    return S3Index(store, model=NormalDistortionModel(8, 10.0))


class TestBuild:
    def test_rejects_empty_store(self):
        with pytest.raises(IndexError_):
            S3Index(FingerprintStore.empty(8))

    def test_default_depth_heuristic(self, index):
        assert 1 <= index.depth <= index.layout.max_depth

    def test_store_is_curve_sorted(self, index):
        assert np.all(np.diff(index.layout.keys.astype(np.int64)) >= 0)

    def test_rejects_bad_depth(self):
        store = clustered_store(100)
        with pytest.raises(ConfigurationError):
            S3Index(store, depth=0)
        with pytest.raises(ConfigurationError):
            S3Index(store, depth=999)


class TestStatisticalQuery:
    def test_returns_block_members_only_and_all(self, index):
        """V_alpha is exactly the union of selected blocks."""
        query = index.store.fingerprints[123].astype(float)
        selection = index.block_selection(query, 0.8)
        ranges = index.row_ranges(selection)
        expected_rows = index.layout.gather_rows(ranges)
        result = index.statistical_query(query, 0.8)
        assert np.array_equal(np.sort(result.rows), np.sort(expected_rows))

    def test_expectation_honored_on_planted_queries(self, index):
        rng = np.random.default_rng(5)
        sigma = 10.0
        hits = trials = 0
        for _ in range(120):
            row = int(rng.integers(0, len(index)))
            original = index.store.fingerprints[row]
            query = np.clip(original + rng.normal(0, sigma, 8), 0, 255)
            result = index.statistical_query(query, 0.8)
            trials += 1
            hits += bool(
                np.any(np.all(result.fingerprints == original, axis=1))
            )
        assert hits / trials >= 0.7  # alpha=0.8 with clipping + noise margin

    def test_alpha_monotonicity(self, index):
        query = index.store.fingerprints[42].astype(float)
        low = index.statistical_query(query, 0.5)
        high = index.statistical_query(query, 0.95)
        assert high.stats.rows_scanned >= low.stats.rows_scanned

    def test_stats_populated(self, index):
        result = index.statistical_query(
            index.store.fingerprints[0].astype(float), 0.8
        )
        stats = result.stats
        assert stats.blocks_selected > 0
        assert stats.rows_scanned == len(result)
        assert stats.filter_seconds > 0
        assert stats.descents >= 1
        assert stats.total_seconds == pytest.approx(
            stats.filter_seconds + stats.refine_seconds
        )

    def test_model_override_and_missing_model(self):
        store = clustered_store(500)
        index = S3Index(store)  # no default model
        with pytest.raises(ConfigurationError):
            index.statistical_query(np.zeros(8), 0.8)
        result = index.statistical_query(
            np.full(8, 128.0), 0.8, model=NormalDistortionModel(8, 5.0)
        )
        assert result.stats.blocks_selected > 0

    def test_model_dimension_checked(self, index):
        with pytest.raises(ConfigurationError):
            index.statistical_query(
                np.zeros(8), 0.8, model=NormalDistortionModel(4, 5.0)
            )

    def test_exact_blocks_path(self, index):
        query = index.store.fingerprints[7].astype(float)
        approx = index.statistical_query(query, 0.8)
        exact = index.statistical_query(query, 0.8, exact_blocks=True)
        assert exact.stats.blocks_selected <= approx.stats.blocks_selected


class TestRangeQuery:
    def test_matches_sequential_scan(self, index):
        scan = SequentialScanIndex(index.store)
        rng = np.random.default_rng(9)
        for _ in range(5):
            query = rng.uniform(0, 255, size=8)
            eps = radius_for_expectation(0.7, 8, 10.0)
            a = index.range_query(query, eps)
            b = scan.range_query(query, eps)
            key_a = sorted(zip(a.ids.tolist(), a.timecodes.tolist()))
            key_b = sorted(zip(b.ids.tolist(), b.timecodes.tolist()))
            assert key_a == key_b

    def test_distances_are_exact(self, index):
        query = index.store.fingerprints[10].astype(float)
        result = index.range_query(query, 30.0)
        for fp, dist in zip(result.fingerprints, result.distances):
            assert dist == pytest.approx(
                np.linalg.norm(fp.astype(float) - query)
            )
            assert dist <= 30.0

    def test_zero_epsilon_finds_exact_row(self, index):
        query = index.store.fingerprints[77].astype(float)
        result = index.range_query(query, 0.0)
        assert len(result) >= 1
        assert np.all(result.distances == 0.0)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        store = clustered_store(2000, seed=3)
        index = S3Index(store, model=NormalDistortionModel(8, 7.0), depth=10)
        index.save(tmp_path / "idx")
        loaded = S3Index.load(tmp_path / "idx")
        assert loaded.depth == 10
        assert loaded.model.sigma == pytest.approx(7.0)
        query = store.fingerprints[5].astype(float)
        a = index.statistical_query(query, 0.8)
        b = loaded.statistical_query(query, 0.8)
        assert np.array_equal(np.sort(a.rows), np.sort(b.rows))


class TestKnnBaseline:
    def test_knn_returns_sorted_neighbours(self):
        store = clustered_store(3000, seed=4)
        scan = SequentialScanIndex(store)
        query = store.fingerprints[0].astype(float)
        result = scan.knn_query(query, 10)
        assert len(result) == 10
        assert np.all(np.diff(result.distances) >= 0)
        assert result.distances[0] == 0.0  # the row itself

    def test_knn_rejects_bad_k(self):
        store = clustered_store(50)
        scan = SequentialScanIndex(store)
        with pytest.raises(ConfigurationError):
            scan.knn_query(np.zeros(8), 0)
        with pytest.raises(ConfigurationError):
            scan.knn_query(np.zeros(8), 51)


class TestExtended:
    def test_rebuild_contains_both_stores(self):
        base = clustered_store(1000, seed=10)
        more = clustered_store(500, seed=11)
        index = S3Index(base, model=NormalDistortionModel(8, 9.0), depth=12)
        bigger = index.extended(more)
        assert len(bigger) == 1500
        assert bigger.depth == index.depth
        assert bigger.model is index.model
        # Every original fingerprint remains findable at distance zero.
        query = more.fingerprints[3].astype(float)
        result = bigger.range_query(query, 0.0)
        assert len(result) >= 1
