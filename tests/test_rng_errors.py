"""Tests for the RNG helpers and the exception hierarchy."""

import numpy as np
import pytest

from repro import errors
from repro.rng import resolve_rng, spawn


class TestResolveRng:
    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = resolve_rng(42).integers(0, 1000, 10)
        b = resolve_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert resolve_rng(gen) is gen


class TestSpawn:
    def test_children_are_independent(self):
        parent = np.random.default_rng(0)
        kids = spawn(parent, 3)
        assert len(kids) == 3
        draws = [k.integers(0, 10**9) for k in kids]
        assert len(set(draws)) == 3

    def test_spawn_deterministic(self):
        a = spawn(np.random.default_rng(7), 2)
        b = spawn(np.random.default_rng(7), 2)
        for x, y in zip(a, b):
            assert x.integers(0, 10**9) == y.integers(0, 10**9)

    def test_consuming_one_child_leaves_others(self):
        parent = np.random.default_rng(1)
        kids = spawn(parent, 2)
        before = kids[1].bit_generator.state["state"]["state"]
        kids[0].integers(0, 100, 1000)
        after = kids[1].bit_generator.state["state"]["state"]
        assert before == after


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "cls",
        [
            errors.ConfigurationError,
            errors.GeometryError,
            errors.StoreError,
            errors.IndexError_,
            errors.ExtractionError,
        ],
    )
    def test_all_derive_from_repro_error(self, cls):
        assert issubclass(cls, errors.ReproError)

    def test_single_catch_covers_library_failures(self):
        """The documented pattern: one except clause for the library."""
        from repro.distortion import NormalDistortionModel

        with pytest.raises(errors.ReproError):
            NormalDistortionModel(0, 1.0)
        from repro.hilbert import HilbertCurve

        with pytest.raises(errors.ReproError):
            HilbertCurve(0, 1)

    def test_index_error_does_not_shadow_builtin(self):
        assert errors.IndexError_ is not IndexError
        assert not issubclass(errors.IndexError_, IndexError)
