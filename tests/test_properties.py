"""Cross-module property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cbcd.mestimator import estimate_offset, tukey_rho
from repro.distortion.model import NormalDistortionModel
from repro.distortion.radial import (
    expectation_for_radius,
    radius_for_expectation,
)
from repro.fingerprint.descriptor import dequantize, quantize
from repro.hilbert.butz import HilbertCurve
from repro.index.filtering import select_blocks_threshold
from repro.index.store import FingerprintStore


class TestHilbertProperties:
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10**9),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_any_geometry(self, ndims, order, seed):
        hc = HilbertCurve(ndims, order)
        rng = np.random.default_rng(seed)
        point = rng.integers(0, hc.side, size=ndims).tolist()
        assert hc.decode(hc.encode(point)) == point

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=10**9),
    )
    @settings(max_examples=30, deadline=None)
    def test_adjacent_indices_adjacent_cells(self, ndims, order, seed):
        hc = HilbertCurve(ndims, order)
        rng = np.random.default_rng(seed)
        i = int(rng.integers(0, (1 << hc.total_bits) - 1))
        a = hc.decode(i)
        b = hc.decode(i + 1)
        diffs = [abs(x - y) for x, y in zip(a, b)]
        assert sum(diffs) == 1 and max(diffs) == 1


class TestQuantizationProperties:
    @given(
        hnp.arrays(
            np.float64,
            st.integers(min_value=1, max_value=40),
            elements=st.floats(min_value=-1.0, max_value=1.0),
        )
    )
    def test_roundtrip_bounded_error(self, values):
        recovered = dequantize(quantize(values))
        assert np.max(np.abs(recovered - values)) <= 1.0 / 255.0 + 1e-12

    @given(
        hnp.arrays(
            np.float64,
            10,
            elements=st.floats(min_value=-1.0, max_value=1.0),
        )
    )
    def test_quantize_monotone(self, values):
        order = np.argsort(values, kind="stable")
        q = quantize(values)
        assert np.all(np.diff(q[order].astype(np.int64)) >= 0)


class TestDistortionProperties:
    @given(
        st.floats(min_value=0.02, max_value=0.98),
        st.integers(min_value=1, max_value=30),
        st.floats(min_value=0.5, max_value=50.0),
    )
    @settings(max_examples=60)
    def test_radius_expectation_inverse(self, alpha, ndims, sigma):
        eps = radius_for_expectation(alpha, ndims, sigma)
        assert expectation_for_radius(eps, ndims, sigma) == pytest.approx(
            alpha, abs=1e-9
        )

    @given(
        st.floats(min_value=-200, max_value=200),
        st.floats(min_value=1.0, max_value=40.0),
    )
    @settings(max_examples=40)
    def test_box_probability_bounds(self, centre, sigma):
        model = NormalDistortionModel(3, sigma)
        lo = np.full(3, centre - 10.0)
        hi = np.full(3, centre + 10.0)
        prob = model.box_probability(lo, hi, np.zeros(3))
        assert 0.0 <= prob <= 1.0

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=15, deadline=None)
    def test_threshold_selection_subset_of_space(self, seed):
        """Selected block probabilities always exceed t and sum <= 1."""
        curve = HilbertCurve(3, 3)
        model = NormalDistortionModel(3, 2.0)
        rng = np.random.default_rng(seed)
        query = rng.uniform(0, curve.side - 1, size=3)
        sel = select_blocks_threshold(query, model, curve, 6, 0.01)
        assert np.all(sel.probabilities > 0.01)
        assert sel.total_probability <= 1.0 + 1e-9
        assert len(np.unique(sel.prefixes)) == len(sel)


class TestTukeyProperties:
    @given(
        hnp.arrays(
            np.float64,
            st.integers(min_value=1, max_value=30),
            elements=st.floats(min_value=-1e3, max_value=1e3),
        ),
        st.floats(min_value=0.5, max_value=50.0),
    )
    def test_rho_bounded(self, u, c):
        rho = tukey_rho(u, c)
        assert np.all(rho >= 0.0)
        assert np.all(rho <= c * c / 6.0 + 1e-12)

    @given(
        st.floats(min_value=-100, max_value=100),
        st.integers(min_value=3, max_value=12),
    )
    @settings(max_examples=30, deadline=None)
    def test_offset_estimation_equivariance(self, true_b, num):
        tcs = np.arange(num, dtype=np.float64) * 3.0
        est = estimate_offset(
            list(tcs + true_b), [np.array([t]) for t in tcs], c=2.0
        )
        assert est.offset == pytest.approx(true_b, abs=0.2)


class TestStoreProperties:
    @given(
        count=st.integers(min_value=1, max_value=100),
        ndims=st.integers(min_value=1, max_value=24),
        seed=st.integers(min_value=0, max_value=10**9),
    )
    @settings(max_examples=20, deadline=None)
    def test_save_load_roundtrip(self, count, ndims, seed, tmp_path_factory):
        rng = np.random.default_rng(seed)
        store = FingerprintStore(
            fingerprints=rng.integers(0, 256, (count, ndims), dtype=np.uint8),
            ids=rng.integers(0, 2**32, count, dtype=np.uint32),
            timecodes=rng.uniform(-1e6, 1e6, count),
        )
        path = tmp_path_factory.mktemp("prop") / "db.store"
        store.save(path)
        loaded = FingerprintStore.load(path)
        assert np.array_equal(loaded.fingerprints, store.fingerprints)
        assert np.array_equal(loaded.ids, store.ids)
        assert np.array_equal(loaded.timecodes, store.timecodes)
