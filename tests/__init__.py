"""Test-suite package for the S3 reproduction."""
