"""Tests for corpus building, filler scaling and workloads."""

import numpy as np
import pytest

from repro.corpus.builder import build_reference_corpus
from repro.corpus.filler import (
    FILLER_ID_BASE,
    resample_fingerprints,
    scale_store,
)
from repro.corpus.workload import model_queries, stream_queries
from repro.errors import ConfigurationError
from repro.index.store import FingerprintStore


@pytest.fixture(scope="module")
def corpus():
    return build_reference_corpus(num_videos=4, frames_per_video=80, seed=0)


class TestReferenceCorpus:
    def test_one_id_per_clip(self, corpus):
        assert set(np.unique(corpus.store.ids)) == {0, 1, 2, 3}

    def test_fingerprints_per_clip_positive(self, corpus):
        counts = corpus.fingerprints_per_clip()
        assert counts.shape == (4,)
        assert np.all(counts > 0)
        assert counts.sum() == len(corpus.store)

    def test_candidate_ground_truth(self, corpus):
        clip, truth = corpus.candidate(2, 10, 40)
        assert clip.num_frames == 40
        assert truth.video_id == 2
        assert truth.true_offset == -10.0

    def test_candidate_bounds_checked(self, corpus):
        with pytest.raises(ConfigurationError):
            corpus.candidate(9, 0, 40)
        with pytest.raises(ConfigurationError):
            corpus.candidate(0, 70, 40)

    def test_random_candidates(self, corpus):
        candidates = corpus.random_candidates(5, 40, rng=1)
        assert len(candidates) == 5
        for clip, truth in candidates:
            assert clip.num_frames == 40
            assert 0 <= truth.video_id < 4

    def test_deterministic_given_seed(self):
        a = build_reference_corpus(2, 60, seed=3)
        b = build_reference_corpus(2, 60, seed=3)
        assert np.array_equal(a.store.fingerprints, b.store.fingerprints)


class TestFiller:
    def test_count_and_id_range(self, corpus):
        filler = resample_fingerprints(corpus.store, 2000, rng=0)
        assert len(filler) == 2000
        assert np.all(filler.ids >= FILLER_ID_BASE)

    def test_ids_blocked_by_rows_per_id(self, corpus):
        filler = resample_fingerprints(
            corpus.store, 1200, rows_per_id=500, rng=0
        )
        assert len(np.unique(filler.ids)) == 3  # ceil(1200/500)

    def test_zero_count(self, corpus):
        filler = resample_fingerprints(corpus.store, 0, rng=0)
        assert len(filler) == 0

    def test_distribution_preserved(self, corpus):
        """Filler marginals stay close to the pool's marginals."""
        filler = resample_fingerprints(corpus.store, 5000, rng=0)
        pool_mean = corpus.store.fingerprints.astype(float).mean(axis=0)
        filler_mean = filler.fingerprints.astype(float).mean(axis=0)
        assert np.max(np.abs(pool_mean - filler_mean)) < 8.0

    def test_rejects_empty_pool(self):
        with pytest.raises(ConfigurationError):
            resample_fingerprints(FingerprintStore.empty(20), 10)

    def test_scale_store_keeps_base_rows_first(self, corpus):
        scaled = scale_store(corpus.store, len(corpus.store) + 500, rng=0)
        assert len(scaled) == len(corpus.store) + 500
        assert np.array_equal(
            scaled.fingerprints[: len(corpus.store)], corpus.store.fingerprints
        )
        assert np.array_equal(scaled.ids[: len(corpus.store)], corpus.store.ids)

    def test_scale_store_noop_when_target_small(self, corpus):
        assert scale_store(corpus.store, 10) is corpus.store


class TestWorkloads:
    def test_model_queries_plant_originals(self, corpus):
        workload = model_queries(corpus.store, 50, sigma=10.0, rng=0)
        assert len(workload) == 50
        assert workload.queries.shape == (50, 20)
        for i in range(50):
            original = corpus.store.fingerprints[workload.rows[i]]
            assert np.array_equal(workload.originals[i], original)

    def test_retrieved_helper(self, corpus):
        workload = model_queries(corpus.store, 5, sigma=10.0, rng=0)
        assert workload.retrieved(0, workload.originals[0:1])
        assert not workload.retrieved(0, np.empty((0, 20), dtype=np.uint8))

    def test_queries_clipped_to_grid(self, corpus):
        workload = model_queries(corpus.store, 200, sigma=60.0, rng=0)
        assert workload.queries.min() >= 0.0
        assert workload.queries.max() <= 255.0

    def test_stream_queries_shape(self, corpus):
        queries = stream_queries(corpus.store, 30, rng=0)
        assert queries.shape == (30, 20)
        assert queries.min() >= 0.0 and queries.max() <= 255.0

    def test_rejects_bad_parameters(self, corpus):
        with pytest.raises(ConfigurationError):
            model_queries(corpus.store, 0, 10.0)
        with pytest.raises(ConfigurationError):
            model_queries(corpus.store, 5, 0.0)
        with pytest.raises(ConfigurationError):
            stream_queries(corpus.store, 0)
